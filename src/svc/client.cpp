#include "svc/client.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace netpart::svc {

AdaptiveServiceClient::AdaptiveServiceClient(PartitionService& service,
                                             std::string job,
                                             std::int32_t quantum)
    : service_(service), job_(std::move(job)), quantum_(quantum) {
  NP_REQUIRE(quantum_ >= 1, "rate quantum must be positive");
}

std::optional<PartitionVector> AdaptiveServiceClient::repartition(
    std::span<const double> rates, std::int64_t total_pdus) {
  double max_rate = 0.0;
  for (double r : rates) max_rate = std::max(max_rate, r);
  if (rates.empty() || max_rate <= 0.0) {
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  PartitionRequest request;
  request.kind = PartitionRequest::Kind::Repartition;
  request.spec = job_;
  request.n = total_pdus;
  request.rate_milli.reserve(rates.size());
  for (double r : rates) {
    const double scaled = r / max_rate * static_cast<double>(quantum_);
    request.rate_milli.push_back(std::max<std::int32_t>(
        1, static_cast<std::int32_t>(std::lround(scaled))));
  }

  const ServiceReply reply = service_.query(request);
  if (reply.status != ServiceStatus::Ok) {
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  return reply.decision->partition;
}

}  // namespace netpart::svc

// Service client for the adaptive executor.
//
// Bridges exec::RepartitionClient onto the partition service: observed
// per-rank rates are quantised (fastest rank = `quantum`) into a canonical
// Repartition request, so recurring imbalance patterns -- the common case
// under a stable background load or a persistent slowdown -- resolve from
// the decision cache instead of recomputing Eq. 3.  Overloaded or Failed
// replies return nullopt, which the adaptive executor answers with its
// inline rule: the service is an accelerator, never a hard dependency.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "exec/adaptive.hpp"
#include "svc/service.hpp"

namespace netpart::svc {

class AdaptiveServiceClient final : public RepartitionClient {
 public:
  /// `job` labels the computation (distinct jobs never share cache keys).
  /// `quantum` sets the rate resolution: higher = more faithful to the
  /// observed rates, lower = more cache sharing between similar patterns.
  AdaptiveServiceClient(PartitionService& service, std::string job,
                        std::int32_t quantum = 1000);

  std::optional<PartitionVector> repartition(
      std::span<const double> rates, std::int64_t total_pdus) override;

  /// Decisions answered locally because the service shed or failed.
  std::uint64_t fallbacks() const {
    return fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  PartitionService& service_;
  std::string job_;
  std::int32_t quantum_;
  std::atomic<std::uint64_t> fallbacks_{0};
};

}  // namespace netpart::svc

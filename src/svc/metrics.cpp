#include "svc/metrics.hpp"

#include "util/csv.hpp"
#include "util/string_util.hpp"

namespace netpart::svc {

LatencyHistogram::LatencyHistogram(double lo_us, double hi_us,
                                   std::size_t buckets)
    : histogram_(lo_us, hi_us, buckets) {}

void LatencyHistogram::record(double us) {
  std::lock_guard lock(mutex_);
  histogram_.add(us);
  stats_.add(us);
}

std::size_t LatencyHistogram::count() const {
  std::lock_guard lock(mutex_);
  return stats_.count();
}

double LatencyHistogram::mean_us() const {
  std::lock_guard lock(mutex_);
  return stats_.mean();
}

double LatencyHistogram::min_us() const {
  std::lock_guard lock(mutex_);
  return stats_.min();
}

double LatencyHistogram::max_us() const {
  std::lock_guard lock(mutex_);
  return stats_.max();
}

QuantileSummary LatencyHistogram::quantiles() const {
  std::lock_guard lock(mutex_);
  if (stats_.count() == 0) return {};
  return summarize_quantiles(histogram_);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::latency(const std::string& name,
                                           double lo_us, double hi_us,
                                           std::size_t buckets) {
  std::lock_guard lock(mutex_);
  auto& slot = latencies_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>(lo_us, hi_us, buckets);
  return *slot;
}

JsonValue MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  JsonValue counters = JsonValue::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name, c->value());
  }
  JsonValue latencies = JsonValue::object();
  for (const auto& [name, h] : latencies_) {
    const QuantileSummary q = h->quantiles();
    latencies.set(name, JsonValue::object()
                            .set("count", static_cast<std::uint64_t>(
                                              h->count()))
                            .set("mean_us", h->mean_us())
                            .set("min_us", h->min_us())
                            .set("max_us", h->max_us())
                            .set("p50_us", q.p50)
                            .set("p90_us", q.p90)
                            .set("p95_us", q.p95)
                            .set("p99_us", q.p99));
  }
  return JsonValue::object().set("counters", std::move(counters))
      .set("latencies", std::move(latencies));
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  CsvWriter csv(os, {"kind", "name", "field", "value"});
  for (const auto& [name, c] : counters_) {
    csv.write_row({"counter", name, "value", std::to_string(c->value())});
  }
  const auto row = [&csv](const std::string& name, const std::string& field,
                          double v) {
    csv.write_row({"latency", name, field, format_double(v, 3)});
  };
  for (const auto& [name, h] : latencies_) {
    const QuantileSummary q = h->quantiles();
    csv.write_row({"latency", name, "count", std::to_string(h->count())});
    row(name, "mean_us", h->mean_us());
    row(name, "min_us", h->min_us());
    row(name, "max_us", h->max_us());
    row(name, "p50_us", q.p50);
    row(name, "p90_us", q.p90);
    row(name, "p95_us", q.p95);
    row(name, "p99_us", q.p99);
  }
}

}  // namespace netpart::svc

// Service observability: named counters and latency histograms.
//
// The registry hands out stable references -- callers resolve a metric
// once (registry mutex) and then update it lock-free (counters) or under
// the metric's own short lock (histograms), never the registry's.  Export
// is deterministic: metrics render in name order, via the util/json
// emitter for JSON and util/csv for CSV, so two runs of a deterministic
// workload produce diffable output.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace netpart::svc {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Latency distribution: a fixed-width histogram (drives the p50/p95/p99
/// quantile estimates) plus exact running mean/min/max.
class LatencyHistogram {
 public:
  /// Range in microseconds; samples outside clamp into the end buckets.
  LatencyHistogram(double lo_us, double hi_us, std::size_t buckets);

  void record(double us);

  std::size_t count() const;
  double mean_us() const;
  double min_us() const;
  double max_us() const;
  /// Interpolated from the histogram buckets (empty summary when count==0).
  QuantileSummary quantiles() const;

 private:
  mutable std::mutex mutex_;
  Histogram histogram_;
  RunningStats stats_;
};

class MetricsRegistry {
 public:
  /// Find-or-create.  References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  LatencyHistogram& latency(const std::string& name, double lo_us,
                            double hi_us, std::size_t buckets);

  /// {"counters": {name: value...},
  ///  "latencies": {name: {count, mean_us, min_us, max_us, p50_us...}}}
  JsonValue to_json() const;

  /// Long-form rows: kind,name,field,value (one row per exported number).
  void write_csv(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latencies_;
};

}  // namespace netpart::svc

// Service observability, now backed by the unified telemetry layer.
//
// The counters/histograms that used to live here moved to src/obs/ so the
// whole stack (partitioner, estimator, adaptive executor, MMPS, service)
// meters through one registry type; see DESIGN.md §9.  The service keeps a
// *private* registry instance -- its counters are per-service state -- while
// its spans go to obs::TelemetryRegistry::global().  These aliases keep the
// svc:: spellings working.
#pragma once

#include "obs/telemetry.hpp"

namespace netpart::svc {

using Counter = obs::Counter;
using LatencyHistogram = obs::LatencyHistogram;
using MetricsRegistry = obs::TelemetryRegistry;

}  // namespace netpart::svc

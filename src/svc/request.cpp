#include "svc/request.hpp"

#include "util/hash.hpp"

namespace netpart::svc {

std::uint64_t network_signature(const Network& net) {
  Fnv1a h;
  h.i32(net.num_clusters());
  for (const Cluster& c : net.clusters()) {
    const ProcessorType& t = c.type();
    h.i32(c.id())
        .str(c.name())
        .i32(c.size())
        .i32(c.segment())
        .str(t.name)
        .i64(t.flop_time.as_nanos())
        .i64(t.int_time.as_nanos())
        .i64(t.comm_per_byte.as_nanos())
        .i64(t.comm_per_message.as_nanos())
        .u8(t.data_format == DataFormat::BigEndian ? 0 : 1)
        .i64(t.coerce_per_byte.as_nanos());
  }
  h.i32(net.num_segments());
  for (const Segment& s : net.segments()) {
    h.i32(s.id).f64(s.bandwidth_bps).i64(s.frame_overhead.as_nanos());
  }
  h.u64(static_cast<std::uint64_t>(net.routers().size()));
  for (const RouterLink& r : net.routers()) {
    h.i32(r.a).i32(r.b).i64(r.delay_per_byte.as_nanos()).i64(
        r.delay_per_packet.as_nanos());
  }
  return h.value();
}

std::uint64_t request_key(const PartitionRequest& request,
                          std::uint64_t network_signature,
                          std::uint64_t epoch) {
  Fnv1a h;
  h.u64(network_signature)
      .u64(epoch)
      .u8(static_cast<std::uint8_t>(request.kind))
      .str(request.spec)
      .i64(request.n)
      .i32(request.iterations)
      .u8(request.options.search == PartitionOptions::Search::Binary ? 0 : 1)
      .u8(request.options.stop_at_partial_cluster ? 1 : 0);
  h.u64(static_cast<std::uint64_t>(request.rate_milli.size()));
  for (std::int32_t r : request.rate_milli) h.i32(r);
  return h.value();
}

}  // namespace netpart::svc

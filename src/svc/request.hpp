// The partition service's canonical request and cache key.
//
// A request is pure data -- no callbacks, no pointers -- so that two
// clients asking the same question produce byte-identical requests, and so
// the cache key can be derived deterministically (util/hash FNV-1a over an
// explicit little-endian field serialisation).  The key also folds in
//   * the network signature: a fingerprint of the immutable network
//     description, so decisions for different networks never collide, and
//   * the availability epoch: the pool of partitionable processors at the
//     time of admission; an epoch bump makes every older key unreachable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "net/network.hpp"

namespace netpart::svc {

struct PartitionRequest {
  enum class Kind : std::uint8_t {
    /// Full partition: resolve `spec` into a ComputationSpec, estimate, run
    /// the Section 5 heuristic.  Answers "how should this program start?".
    Partition = 0,
    /// Eq. 3 re-decomposition from observed per-rank rates (quantised to
    /// `rate_milli`).  Answers the adaptive executor's "how should this
    /// program rebalance?"; recurring imbalance patterns hit the cache.
    Repartition = 1,
  };

  Kind kind = Kind::Partition;
  /// Spec-factory name for Partition requests ("stencil", "gauss", ...);
  /// a free-form job label for Repartition requests.
  std::string spec;
  /// Problem size: PDU count the decomposition must distribute.
  std::int64_t n = 0;
  std::int32_t iterations = 1;
  /// Repartition only: observed per-rank rates normalised so the fastest
  /// rank reads 1000 (see AdaptiveServiceClient); entries must be >= 1.
  std::vector<std::int32_t> rate_milli;
  PartitionOptions options;
};

/// Fingerprint of everything immutable the cost model and partitioner see:
/// cluster names/sizes/machine models, segment parameters, router links.
/// Dynamic per-processor load is deliberately excluded -- that is the
/// availability epoch's job.
std::uint64_t network_signature(const Network& net);

/// The deterministic cache key.  Reproducible across platforms (endian- and
/// width-stable); tested against golden values.
std::uint64_t request_key(const PartitionRequest& request,
                          std::uint64_t network_signature,
                          std::uint64_t epoch);

}  // namespace netpart::svc

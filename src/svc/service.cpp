#include "svc/service.hpp"

#include "analysis/race/annotations.hpp"
#include "core/estimator.hpp"
#include "obs/span.hpp"
#include "svc/validate.hpp"
#include "util/error.hpp"

namespace netpart::svc {

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

PartitionService::PartitionService(const Network& net, const CostModelDb& db,
                                   AvailabilityFeed& feed,
                                   SpecResolver resolver,
                                   ServiceOptions options)
    : net_(net),
      db_(db),
      feed_(feed),
      resolver_(std::move(resolver)),
      options_(std::move(options)),
      signature_(network_signature(net)),
      cache_(options_.cache_capacity, options_.cache_shards),
      requests_(metrics_.counter("requests")),
      hits_(metrics_.counter("cache_hits")),
      coalesced_(metrics_.counter("coalesced")),
      shed_(metrics_.counter("shed_overload")),
      failed_(metrics_.counter("failed")),
      cold_computes_(metrics_.counter("cold_computes")),
      epoch_bumps_(metrics_.counter("epoch_bumps")),
      hit_latency_(metrics_.latency("hit", 0.0, 200.0, 400)),
      cold_latency_(metrics_.latency("cold", 0.0, 100000.0, 1000)) {
  NP_REQUIRE(options_.workers >= 1, "service needs at least one worker");
  NP_REQUIRE(options_.queue_capacity >= 1,
             "service queue capacity must be positive");
  // npracer contract: queue_, inflight_, and stopping_ move only under
  // mutex_; everything the constructor wrote before the fork is visible to
  // the workers through the fork/start edge.
  NP_GUARDED_BY(&queue_, &mutex_, "svc.service.queue");
  NP_GUARDED_BY(&inflight_, &mutex_, "svc.service.inflight");
  NP_GUARDED_BY(&stopping_, &mutex_, "svc.service.stopping");
  NP_ATOMIC_RELEASE(&seen_epoch_, "svc.service.seen_epoch");
  seen_epoch_.store(feed_.epoch(), std::memory_order_release);
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  NP_THREAD_FORK(this, "svc.service.workers");
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PartitionService::~PartitionService() {
  {
    std::lock_guard lock(mutex_);
    NP_LOCK_SCOPE(&mutex_, "svc.service.mutex");
    NP_WRITE(&stopping_, "svc.service.stopping");
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
  NP_THREAD_JOIN(this, "svc.service.workers");
}

std::shared_future<ServiceReply> PartitionService::ready(ServiceReply reply) {
  std::promise<ServiceReply> promise;
  promise.set_value(std::move(reply));
  return promise.get_future().share();
}

void PartitionService::observe_epoch(std::uint64_t epoch) {
  NP_ATOMIC_ACQUIRE(&seen_epoch_, "svc.service.seen_epoch");
  std::uint64_t seen = seen_epoch_.load(std::memory_order_acquire);
  while (epoch > seen) {
    NP_ATOMIC_RMW(&seen_epoch_, "svc.service.seen_epoch");
    if (seen_epoch_.compare_exchange_weak(seen, epoch,
                                          std::memory_order_acq_rel)) {
      cache_.invalidate_before(epoch);
      epoch_bumps_.add();
      break;
    }
  }
}

std::shared_future<ServiceReply> PartitionService::submit(
    const PartitionRequest& request) {
  const auto t0 = Clock::now();
  obs::Span span(obs::TelemetryRegistry::global(), "svc.request", "svc");
  requests_.add();
  // Admission gate: a request that violates its own contract is rejected
  // here, before it can occupy a cache slot, coalesce other clients onto a
  // doomed key, or reach arithmetic in the cold path that assumes the
  // contract.  validate_request never allocates, so the cached hot path
  // stays allocation-free (the hot-path bench pins this).
  if (const char* violation = validate_request(request)) {
    failed_.add();
    span.attr("outcome", JsonValue("invalid"));
    return ready(ServiceReply{ServiceStatus::Failed, nullptr, false,
                              violation});
  }
  auto [snapshot, epoch] = feed_.read();
  observe_epoch(epoch);
  const std::uint64_t key = request_key(request, signature_, epoch);

  if (auto hit = cache_.lookup(key)) {
    hits_.add();
    hit_latency_.record(us_since(t0));
    span.attr("outcome", JsonValue("hit"));
    return ready(ServiceReply{ServiceStatus::Ok, std::move(hit),
                              /*cache_hit=*/true, {}});
  }

  std::unique_lock lock(mutex_);
  // Explicit acquire/release (not NP_LOCK_SCOPE): this function unlocks
  // early on several paths, and the annotation must track the *real* lock
  // state or the detector would model critical sections that never were.
  NP_LOCK_ACQUIRE(&mutex_, "svc.service.mutex");
  NP_READ(&stopping_, "svc.service.stopping");
  if (stopping_) {
    NP_LOCK_RELEASE(&mutex_, "svc.service.mutex");
    lock.unlock();
    span.attr("outcome", JsonValue("rejected"));
    return ready(ServiceReply{ServiceStatus::Failed, nullptr, false,
                              "service shutting down"});
  }
  NP_READ(&inflight_, "svc.service.inflight");
  if (const auto it = inflight_.find(key); it != inflight_.end()) {
    coalesced_.add();
    span.attr("outcome", JsonValue("coalesced"));
    NP_LOCK_RELEASE(&mutex_, "svc.service.mutex");
    return it->second->future;
  }
  // Double-checked: a worker may have completed this key between the
  // lock-free miss above and acquiring the lock.
  if (auto hit = cache_.peek(key)) {
    NP_LOCK_RELEASE(&mutex_, "svc.service.mutex");
    lock.unlock();
    hits_.add();
    hit_latency_.record(us_since(t0));
    span.attr("outcome", JsonValue("hit"));
    return ready(ServiceReply{ServiceStatus::Ok, std::move(hit),
                              /*cache_hit=*/true, {}});
  }
  NP_READ(&queue_, "svc.service.queue");
  if (queue_.size() >= options_.queue_capacity) {
    NP_LOCK_RELEASE(&mutex_, "svc.service.mutex");
    lock.unlock();
    shed_.add();
    span.attr("outcome", JsonValue("shed"));
    return ready(ServiceReply{ServiceStatus::Overloaded, nullptr, false,
                              "request queue full"});
  }
  auto job = std::make_shared<Job>();
  job->request = request;
  job->key = key;
  job->epoch = epoch;
  job->snapshot = std::move(snapshot);
  job->enqueued = t0;
  job->trace = span.context();
  job->future = job->promise.get_future().share();
  NP_WRITE(&inflight_, "svc.service.inflight");
  inflight_.emplace(key, job);
  NP_WRITE(&queue_, "svc.service.queue");
  queue_.push_back(job);
  NP_LOCK_RELEASE(&mutex_, "svc.service.mutex");
  lock.unlock();
  work_ready_.notify_one();
  span.attr("outcome", JsonValue("enqueued"));
  return job->future;
}

ServiceReply PartitionService::query(const PartitionRequest& request) {
  return submit(request).get();
}

void PartitionService::worker_loop() {
  // One scratch per worker thread, reused across every cold compute this
  // worker ever runs (see EstimatorScratch's single-owner contract).  The
  // embedded BatchScratch rebinds itself when the request's stack-local
  // CycleEstimator changes (binding id, not address), so batch buffers and
  // coefficient tables also amortise across requests.
  EstimatorScratch scratch;
  NP_THREAD_START(this, "svc.service.workers");
  for (;;) {
    JobPtr job;
    {
      std::unique_lock lock(mutex_);
      // Explicit acquire/release: the condition wait below drops and
      // retakes the real mutex, and the annotations must mirror that or
      // the detector would see one long critical section that never
      // happened (and miss the happens-before edges the re-acquisition
      // creates).
      NP_LOCK_ACQUIRE(&mutex_, "svc.service.mutex");
      for (;;) {
        NP_READ(&stopping_, "svc.service.stopping");
        NP_READ(&queue_, "svc.service.queue");
        if (stopping_ || !queue_.empty()) break;
        NP_LOCK_RELEASE(&mutex_, "svc.service.mutex");
        work_ready_.wait(lock);
        NP_LOCK_ACQUIRE(&mutex_, "svc.service.mutex");
      }
      if (queue_.empty()) {
        NP_LOCK_RELEASE(&mutex_, "svc.service.mutex");
        NP_THREAD_END(this, "svc.service.workers");
        return;  // stopping and fully drained
      }
      NP_WRITE(&queue_, "svc.service.queue");
      job = std::move(queue_.front());
      queue_.pop_front();
      NP_LOCK_RELEASE(&mutex_, "svc.service.mutex");
    }
    run_cold(*job, scratch);
  }
}

void PartitionService::run_cold(Job& job, EstimatorScratch& scratch) {
  // Adopt the submitter's request context: the execute span joins that
  // trace as a child even though it runs on a worker thread.
  obs::ContextScope ctx(job.trace);
  obs::Span span(obs::TelemetryRegistry::global(), "svc.execute", "svc");
  if (span.active()) {
    span.attr("queue_wait_us", JsonValue(us_since(job.enqueued)));
  }
  ServiceReply reply;
  try {
    PartitionDecision decision =
        options_.cold_override
            ? options_.cold_override(job.request, job.snapshot)
            : cold_compute(job.request, job.snapshot, scratch);
    decision.key = job.key;
    decision.epoch = job.epoch;
    auto shared =
        std::make_shared<const PartitionDecision>(std::move(decision));
    cache_.insert(shared);
    cold_computes_.add();
    cold_latency_.record(us_since(job.enqueued));
    reply = ServiceReply{ServiceStatus::Ok, std::move(shared), false, {}};
    span.attr("outcome", JsonValue("ok"));
  } catch (const std::exception& e) {
    failed_.add();
    span.attr("outcome", JsonValue("failed"));
    reply = ServiceReply{ServiceStatus::Failed, nullptr, false, e.what()};
  }
  {
    std::lock_guard lock(mutex_);
    NP_LOCK_SCOPE(&mutex_, "svc.service.mutex");
    NP_WRITE(&inflight_, "svc.service.inflight");
    inflight_.erase(job.key);
  }
  job.promise.set_value(std::move(reply));
}

PartitionDecision PartitionService::cold_compute(
    const PartitionRequest& request, const AvailabilitySnapshot& snapshot,
    EstimatorScratch& scratch) const {
  PartitionDecision decision;
  if (request.kind == PartitionRequest::Kind::Repartition) {
    NP_REQUIRE(!request.rate_milli.empty(),
               "repartition request carries no rates");
    std::vector<double> rates;
    rates.reserve(request.rate_milli.size());
    for (std::int32_t r : request.rate_milli) {
      NP_REQUIRE(r >= 1, "quantised rates must be >= 1");
      rates.push_back(static_cast<double>(r));
    }
    decision.partition = proportional_partition(rates, request.n);
    return decision;
  }
  NP_REQUIRE(resolver_ != nullptr,
             "Partition-kind request but no spec resolver registered");
  const ComputationSpec spec = resolver_(request);
  CycleEstimator estimator(net_, db_, spec);
  PartitionResult result =
      partition(estimator, snapshot, request.options, &scratch);
  decision.partition = std::move(result.estimate.partition);
  decision.config = std::move(result.config);
  decision.placement = std::move(result.placement);
  decision.t_c_ms = result.estimate.t_c_ms;
  decision.evaluations = result.evaluations;
  return decision;
}

}  // namespace netpart::svc

// The concurrent partition service.
//
// The paper invokes the partitioner once per program start; the production
// shape is a long-lived service answering partition queries under traffic.
// This class puts the `O(K log2 P)` search plus cost-model evaluation
// behind:
//
//   * a sharded LRU decision cache keyed by (network signature,
//     availability epoch, canonical request) -- repeated queries are
//     lookups, and an availability change invalidates by construction;
//   * a fixed worker pool draining a bounded queue -- cold computations
//     never run on client threads, and when the queue is full admission
//     control *sheds* the request with an explicit Overloaded reply
//     instead of queuing without bound;
//   * request coalescing -- concurrent identical requests attach to the
//     one in-flight computation (a shared-future per cache key), so a
//     thundering herd on a cold key costs one compute;
//   * a metrics registry -- counters plus hit/cold latency histograms,
//     exportable as CSV/JSON.
//
// Threading contract: the Network and CostModelDb are read concurrently by
// the workers and must not be mutated while the service is alive (drive
// availability changes through the AvailabilityFeed, not by editing the
// Network).  All public methods are thread-safe.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "calib/cost_model.hpp"
#include "dp/phases.hpp"
#include "net/availability.hpp"
#include "net/network.hpp"
#include "obs/trace_context.hpp"
#include "svc/cache.hpp"
#include "svc/metrics.hpp"
#include "svc/request.hpp"

namespace netpart {
struct EstimatorScratch;  // core/estimator.hpp
}

namespace netpart::svc {

enum class ServiceStatus {
  Ok,
  /// Shed at admission: the request queue was full.  The client retries
  /// (with backoff) or falls back to a local decision.
  Overloaded,
  /// The cold path threw; `error` carries the message.  Failures are not
  /// cached -- a retry recomputes.
  Failed,
};

struct ServiceReply {
  ServiceStatus status = ServiceStatus::Failed;
  std::shared_ptr<const PartitionDecision> decision;  ///< set iff Ok
  bool cache_hit = false;
  std::string error;
};

/// Materialises the ComputationSpec a Partition-kind request names.
/// Must be thread-safe (called concurrently from workers).
using SpecResolver = std::function<ComputationSpec(const PartitionRequest&)>;

/// Test/chaos hook: replaces the real cold path (resolver + estimator +
/// heuristic).  Exceptions it throws surface as Failed replies to every
/// coalesced waiter -- the fault-injection stress tier drives this.
using ColdPathOverride = std::function<PartitionDecision(
    const PartitionRequest&, const AvailabilitySnapshot&)>;

struct ServiceOptions {
  int workers = 4;
  /// Cold requests admitted but not yet started; beyond this, shed.
  std::size_t queue_capacity = 64;
  std::size_t cache_capacity = 1024;
  int cache_shards = 8;
  ColdPathOverride cold_override;
};

class PartitionService {
 public:
  PartitionService(const Network& net, const CostModelDb& db,
                   AvailabilityFeed& feed, SpecResolver resolver,
                   ServiceOptions options = {});

  /// Stops admission, drains the queue (pending jobs complete), joins.
  ~PartitionService();

  PartitionService(const PartitionService&) = delete;
  PartitionService& operator=(const PartitionService&) = delete;

  /// Asynchronous query.  Cache hits and Overloaded decisions resolve
  /// immediately; cold requests resolve when a worker finishes (coalesced
  /// requests share the initiating request's future).
  std::shared_future<ServiceReply> submit(const PartitionRequest& request);

  /// Synchronous convenience: submit + wait.
  ServiceReply query(const PartitionRequest& request);

  const Network& network() const { return net_; }
  std::uint64_t signature() const { return signature_; }
  const AvailabilityFeed& feed() const { return feed_; }
  DecisionCache& cache() { return cache_; }
  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct Job {
    PartitionRequest request;
    std::uint64_t key = 0;
    std::uint64_t epoch = 0;
    AvailabilitySnapshot snapshot;
    std::chrono::steady_clock::time_point enqueued;
    /// The submitting request span's context: the worker adopts it so
    /// svc.execute parents under svc.request across the thread hop.
    obs::TraceContext trace;
    std::promise<ServiceReply> promise;
    std::shared_future<ServiceReply> future;
  };
  using JobPtr = std::shared_ptr<Job>;

  /// Each worker owns one EstimatorScratch for its lifetime: after warm-up
  /// a cold compute's search allocates nothing in the estimator.
  void worker_loop();
  void run_cold(Job& job, EstimatorScratch& scratch);
  PartitionDecision cold_compute(const PartitionRequest& request,
                                 const AvailabilitySnapshot& snapshot,
                                 EstimatorScratch& scratch) const;
  /// Purge stale cache entries the first time a new epoch is observed.
  void observe_epoch(std::uint64_t epoch);

  static std::shared_future<ServiceReply> ready(ServiceReply reply);

  const Network& net_;
  const CostModelDb& db_;
  AvailabilityFeed& feed_;
  SpecResolver resolver_;
  ServiceOptions options_;
  std::uint64_t signature_;

  DecisionCache cache_;
  MetricsRegistry metrics_;
  Counter& requests_;
  Counter& hits_;
  Counter& coalesced_;
  Counter& shed_;
  Counter& failed_;
  Counter& cold_computes_;
  Counter& epoch_bumps_;
  LatencyHistogram& hit_latency_;
  LatencyHistogram& cold_latency_;

  std::atomic<std::uint64_t> seen_epoch_{0};

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<JobPtr> queue_;
  std::unordered_map<std::uint64_t, JobPtr> inflight_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;  // last member: joins before teardown
};

}  // namespace netpart::svc

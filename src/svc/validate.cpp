#include "svc/validate.hpp"

#include <cstdint>

namespace netpart::svc {

const char* validate_request(const PartitionRequest& request) noexcept {
  if (request.n <= 0) {
    return "request n (PDU count) must be positive";
  }
  if (request.iterations < 1) {
    return "request iterations must be >= 1";
  }
  if (request.kind == PartitionRequest::Kind::Partition) {
    if (request.spec.empty()) {
      return "partition request names no spec";
    }
    if (!request.rate_milli.empty()) {
      return "partition request must not carry observed rates";
    }
  } else {
    if (request.rate_milli.empty()) {
      return "repartition request carries no rates";
    }
    for (const std::int32_t rate : request.rate_milli) {
      if (rate < 1) return "quantised rates must be >= 1";
    }
    if (request.n < static_cast<std::int64_t>(request.rate_milli.size())) {
      return "repartition request has fewer PDUs than ranks";
    }
  }
  return nullptr;
}

}  // namespace netpart::svc

// Admission-time request validation.
//
// A malformed request used to ride the queue to a worker and either throw
// deep inside the cold path (wasting a queue slot and a coalescing key) or,
// for the repartition shapes, reach arithmetic that divides by zero.  The
// service now rejects it at submit() with an explicit Failed reply.
//
// The check is deliberately a `const char*` function: validation runs on
// the client thread in front of the cache lookup, so it must not allocate
// -- the hot-path bench asserts the cached path stays at zero allocations
// with the gate in place.
#pragma once

#include "svc/request.hpp"

namespace netpart::svc {

/// Returns nullptr when `request` is well-formed, otherwise a static
/// message describing the first violated contract.  Never throws, never
/// allocates.
const char* validate_request(const PartitionRequest& request) noexcept;

}  // namespace netpart::svc

#include "topo/comm_cycle.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"

namespace netpart {

namespace {
struct CycleState {
  /// Completion time of each directed message of the cycle.
  std::vector<SimTime> delivered_at;
  std::size_t remaining = 0;
};
}  // namespace

CycleResult run_comm_cycles(sim::NetSim& net, const Placement& placement,
                            Topology topology, std::int64_t bytes,
                            int cycles) {
  NP_REQUIRE(!placement.empty(), "placement must be non-empty");
  NP_REQUIRE(cycles >= 1, "need at least one cycle");
  NP_REQUIRE(net.engine().idle(), "engine must be idle at cycle start");

  const int p = static_cast<int>(placement.size());
  const auto messages = cycle_messages(topology, p);

  CycleResult avg;
  avg.per_rank.assign(placement.size(), SimTime::zero());
  avg.elapsed_max = SimTime::zero();
  avg.elapsed_mean = SimTime::zero();

  for (int cycle = 0; cycle < cycles; ++cycle) {
    const SimTime t0 = net.engine().now();
    auto state = std::make_shared<CycleState>();
    state->delivered_at.assign(messages.size(), SimTime::zero());
    state->remaining = messages.size();

    for (std::size_t m = 0; m < messages.size(); ++m) {
      const auto [from, to] = messages[m];
      net.send(placement[static_cast<std::size_t>(from)],
               placement[static_cast<std::size_t>(to)], bytes,
               [state, m, &net] {
                 state->delivered_at[m] = net.engine().now();
                 NP_ASSERT(state->remaining > 0);
                 --state->remaining;
               });
    }
    net.engine().run();
    NP_ASSERT(state->remaining == 0);

    // A rank's communication completes when its last outgoing message has
    // been delivered and its last incoming message has been processed.
    std::vector<SimTime> rank_done(placement.size(), t0);
    for (std::size_t m = 0; m < messages.size(); ++m) {
      const auto [from, to] = messages[m];
      auto& f = rank_done[static_cast<std::size_t>(from)];
      auto& t = rank_done[static_cast<std::size_t>(to)];
      f = std::max(f, state->delivered_at[m]);
      t = std::max(t, state->delivered_at[m]);
    }

    SimTime cycle_max = SimTime::zero();
    SimTime cycle_sum = SimTime::zero();
    for (std::size_t r = 0; r < placement.size(); ++r) {
      const SimTime elapsed = rank_done[r] - t0;
      avg.per_rank[r] += elapsed;
      cycle_max = std::max(cycle_max, elapsed);
      cycle_sum += elapsed;
    }
    avg.elapsed_max += cycle_max;
    avg.elapsed_mean +=
        SimTime::nanos(cycle_sum.as_nanos() /
                       static_cast<std::int64_t>(placement.size()));
  }

  const auto div = [cycles](SimTime t) {
    return SimTime::nanos(t.as_nanos() / cycles);
  };
  for (SimTime& t : avg.per_rank) t = div(t);
  avg.elapsed_max = div(avg.elapsed_max);
  avg.elapsed_mean = div(avg.elapsed_mean);
  return avg;
}

}  // namespace netpart

// Synchronous communication-cycle runner.
//
// One cycle: every rank initiates an asynchronous send of `bytes` to each of
// its send-neighbours, then blocks until it has received from each of its
// recv-neighbours.  The runner executes the cycle on the network simulator
// and reports per-rank and maximum elapsed times.  The same program is used
// for offline calibration (Section 3 of the paper) and inside the SPMD
// executor, so the calibrated model measures exactly the code path the
// application runs.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/netsim.hpp"
#include "topo/placement.hpp"
#include "topo/topology.hpp"

namespace netpart {

struct CycleResult {
  /// Per-rank elapsed time: from cycle start to the completion of the
  /// rank's communication (its last send delivered and last receive
  /// processed).
  std::vector<SimTime> per_rank;
  /// The synchronous cost: max over ranks (what every processor
  /// effectively experiences; verified empirically in the paper).
  SimTime elapsed_max;
  /// Mean over ranks, for dispersion checks.
  SimTime elapsed_mean;
};

/// Run `cycles` back-to-back communication cycles and return the average
/// per-cycle result.  The simulator's engine must be idle on entry; the
/// runner drains it before returning.
CycleResult run_comm_cycles(sim::NetSim& net, const Placement& placement,
                            Topology topology, std::int64_t bytes,
                            int cycles = 1);

}  // namespace netpart

#include "topo/placement.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace netpart {

int config_total(const ProcessorConfig& config) {
  return std::accumulate(config.begin(), config.end(), 0);
}

void validate_config(const Network& net, const ProcessorConfig& config) {
  NP_REQUIRE(static_cast<int>(config.size()) == net.num_clusters(),
             "configuration must name every cluster");
  for (ClusterId c = 0; c < net.num_clusters(); ++c) {
    const int p = config[static_cast<std::size_t>(c)];
    NP_REQUIRE(p >= 0 && p <= net.cluster(c).size(),
               "configuration exceeds cluster capacity");
  }
  NP_REQUIRE(config_total(config) > 0,
             "configuration must select at least one processor");
}

std::vector<ClusterId> clusters_by_speed(const Network& net) {
  std::vector<ClusterId> order(static_cast<std::size_t>(net.num_clusters()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](ClusterId a, ClusterId b) {
                     return net.cluster(a).flop_time() <
                            net.cluster(b).flop_time();
                   });
  return order;
}

Placement contiguous_placement(const Network& net,
                               const ProcessorConfig& config,
                               const std::vector<ClusterId>& cluster_order) {
  validate_config(net, config);
  NP_REQUIRE(static_cast<int>(cluster_order.size()) == net.num_clusters(),
             "cluster order must name every cluster");
  Placement placement;
  placement.reserve(static_cast<std::size_t>(config_total(config)));
  for (ClusterId c : cluster_order) {
    const int p = config[static_cast<std::size_t>(c)];
    for (ProcessorIndex i = 0; i < p; ++i) {
      placement.push_back(ProcessorRef{c, i});
    }
  }
  return placement;
}

Placement contiguous_placement(const Network& net,
                               const ProcessorConfig& config) {
  return contiguous_placement(net, config, clusters_by_speed(net));
}

Placement round_robin_placement(const Network& net,
                                const ProcessorConfig& config) {
  validate_config(net, config);
  Placement placement;
  placement.reserve(static_cast<std::size_t>(config_total(config)));
  ProcessorConfig used(config.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (ClusterId c = 0; c < net.num_clusters(); ++c) {
      const std::size_t ci = static_cast<std::size_t>(c);
      if (used[ci] < config[ci]) {
        placement.push_back(ProcessorRef{c, used[ci]});
        ++used[ci];
        progressed = true;
      }
    }
  }
  return placement;
}

Placement available_placement(
    const Network& net, const ProcessorConfig& config,
    const std::vector<std::vector<ProcessorIndex>>& available,
    const std::vector<ClusterId>& cluster_order) {
  validate_config(net, config);
  NP_REQUIRE(static_cast<int>(cluster_order.size()) == net.num_clusters(),
             "cluster order must name every cluster");
  NP_REQUIRE(static_cast<int>(available.size()) == net.num_clusters(),
             "available-index lists must name every cluster");
  Placement placement;
  placement.reserve(static_cast<std::size_t>(config_total(config)));
  for (ClusterId c : cluster_order) {
    const std::size_t ci = static_cast<std::size_t>(c);
    const int p = config[ci];
    NP_REQUIRE(p <= static_cast<int>(available[ci].size()),
               "configuration exceeds the cluster's available processors");
    for (int i = 0; i < p; ++i) {
      const ProcessorIndex idx = available[ci][static_cast<std::size_t>(i)];
      NP_REQUIRE(idx >= 0 && idx < net.cluster(c).size(),
                 "available index out of range");
      placement.push_back(ProcessorRef{c, idx});
    }
  }
  return placement;
}

std::int64_t router_crossings(const Network& net, const Placement& placement,
                              Topology t) {
  NP_REQUIRE(!placement.empty(), "placement must be non-empty");
  const int p = static_cast<int>(placement.size());
  std::int64_t crossings = 0;
  for (const auto& [from, to] : cycle_messages(t, p)) {
    const SegmentId sa =
        net.cluster(placement[static_cast<std::size_t>(from)].cluster)
            .segment();
    const SegmentId sb =
        net.cluster(placement[static_cast<std::size_t>(to)].cluster)
            .segment();
    if (sa != sb) ++crossings;
  }
  return crossings;
}

}  // namespace netpart

// Task placement.
//
// A placement maps task ranks to processors.  The paper's strategy for the
// 1-D topology is cluster-contiguous: ranks fill the fastest cluster first,
// then the next, so only one task in each cluster communicates across the
// router.  A round-robin strategy is provided as an ablation baseline -- it
// maximises router crossings and shows why locality matters.
#pragma once

#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"
#include "topo/topology.hpp"

namespace netpart {

/// A processor configuration: how many processors to use from each cluster,
/// indexed by ClusterId (the paper's P_i).
using ProcessorConfig = std::vector<int>;

/// rank -> processor map.
using Placement = std::vector<ProcessorRef>;

/// Total processors selected by a configuration.
int config_total(const ProcessorConfig& config);

/// Validate a configuration against a network (0 <= P_i <= cluster size).
void validate_config(const Network& net, const ProcessorConfig& config);

/// Cluster-contiguous placement in the given cluster order: ranks
/// 0..P_a-1 land on the first cluster in `cluster_order`, the next P_b on
/// the second, and so on.  Clusters with P_i == 0 are skipped.
Placement contiguous_placement(const Network& net,
                               const ProcessorConfig& config,
                               const std::vector<ClusterId>& cluster_order);

/// Contiguous placement with clusters ordered fastest-first (the paper's
/// default: matches the partitioning heuristic's cluster ordering).
Placement contiguous_placement(const Network& net,
                               const ProcessorConfig& config);

/// Round-robin placement across clusters (ablation baseline).
Placement round_robin_placement(const Network& net,
                                const ProcessorConfig& config);

/// Cluster-contiguous placement restricted to available processors: like
/// contiguous_placement, but within each cluster the ranks land on the
/// listed indices (e.g. ClusterManager::available_indices) instead of
/// 0..P_i-1.  After crashes or revocations, index 0 of a cluster may be
/// gone; this keeps placements off dead hosts.  `available` is indexed by
/// ClusterId and config[c] must not exceed available[c].size().
Placement available_placement(
    const Network& net, const ProcessorConfig& config,
    const std::vector<std::vector<ProcessorIndex>>& available,
    const std::vector<ClusterId>& cluster_order);

/// Clusters sorted by instruction rate, fastest (smallest flop time) first.
/// Ties break by cluster id for determinism.
std::vector<ClusterId> clusters_by_speed(const Network& net);

/// Number of messages in one cycle of `t` that cross a router under the
/// given placement (the locality metric).
std::int64_t router_crossings(const Network& net, const Placement& placement,
                              Topology t);

}  // namespace netpart

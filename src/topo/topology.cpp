#include "topo/topology.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace netpart {

std::string to_string(Topology t) {
  switch (t) {
    case Topology::OneD:
      return "1-D";
    case Topology::Ring:
      return "ring";
    case Topology::TwoD:
      return "2-D";
    case Topology::Tree:
      return "tree";
    case Topology::Broadcast:
      return "broadcast";
  }
  throw LogicError("unknown topology");
}

Topology topology_from_string(std::string_view name) {
  const std::string n = to_lower(name);
  if (n == "1-d" || n == "1d" || n == "chain") return Topology::OneD;
  if (n == "ring") return Topology::Ring;
  if (n == "2-d" || n == "2d" || n == "mesh") return Topology::TwoD;
  if (n == "tree") return Topology::Tree;
  if (n == "broadcast" || n == "bcast") return Topology::Broadcast;
  throw InvalidArgument("unknown topology: " + std::string(name));
}

const std::vector<Topology>& all_topologies() {
  static const std::vector<Topology> kAll = {
      Topology::OneD, Topology::Ring, Topology::TwoD, Topology::Tree,
      Topology::Broadcast};
  return kAll;
}

bool is_bandwidth_limited(Topology t) { return t == Topology::Broadcast; }

std::pair<int, int> mesh_shape(int p) {
  NP_REQUIRE(p >= 1, "mesh needs at least one rank");
  int rows = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while (rows > 1 && p % rows != 0) --rows;
  // For prime p this degenerates to 1 x p, which matches how mesh codes
  // fall back to a strip decomposition.
  return {rows, p / rows};
}

std::vector<GlobalRank> send_neighbors(Topology t, GlobalRank rank, int p) {
  NP_REQUIRE(p >= 1, "need at least one rank");
  NP_REQUIRE(rank >= 0 && rank < p, "rank out of range");
  std::vector<GlobalRank> out;
  if (p == 1) return out;
  switch (t) {
    case Topology::OneD:
      if (rank > 0) out.push_back(rank - 1);
      if (rank < p - 1) out.push_back(rank + 1);
      break;
    case Topology::Ring:
      out.push_back((rank + 1) % p);
      break;
    case Topology::TwoD: {
      const auto [rows, cols] = mesh_shape(p);
      const int r = rank / cols;
      const int c = rank % cols;
      if (r > 0) out.push_back(rank - cols);
      if (r < rows - 1) out.push_back(rank + cols);
      if (c > 0) out.push_back(rank - 1);
      if (c < cols - 1) out.push_back(rank + 1);
      break;
    }
    case Topology::Tree: {
      // Binary heap layout: parent (rank-1)/2, children 2r+1, 2r+2.
      if (rank > 0) out.push_back((rank - 1) / 2);
      const GlobalRank left = 2 * rank + 1;
      const GlobalRank right = 2 * rank + 2;
      if (left < p) out.push_back(left);
      if (right < p) out.push_back(right);
      break;
    }
    case Topology::Broadcast:
      if (rank == 0) {
        for (GlobalRank r = 1; r < p; ++r) out.push_back(r);
      }
      break;
  }
  return out;
}

std::vector<GlobalRank> recv_neighbors(Topology t, GlobalRank rank, int p) {
  NP_REQUIRE(p >= 1, "need at least one rank");
  NP_REQUIRE(rank >= 0 && rank < p, "rank out of range");
  std::vector<GlobalRank> out;
  if (p == 1) return out;
  switch (t) {
    case Topology::OneD:
    case Topology::TwoD:
    case Topology::Tree:
      // Symmetric patterns: receive from everyone we send to.
      return send_neighbors(t, rank, p);
    case Topology::Ring:
      out.push_back((rank + p - 1) % p);
      break;
    case Topology::Broadcast:
      if (rank != 0) out.push_back(0);
      break;
  }
  return out;
}

std::vector<std::pair<GlobalRank, GlobalRank>> cycle_messages(Topology t,
                                                              int p) {
  std::vector<std::pair<GlobalRank, GlobalRank>> out;
  for (GlobalRank r = 0; r < p; ++r) {
    for (GlobalRank n : send_neighbors(t, r, p)) {
      out.emplace_back(r, n);
    }
  }
  return out;
}

std::int64_t messages_per_cycle(Topology t, int p) {
  std::int64_t total = 0;
  for (GlobalRank r = 0; r < p; ++r) {
    total += static_cast<std::int64_t>(send_neighbors(t, r, p).size());
  }
  return total;
}

}  // namespace netpart

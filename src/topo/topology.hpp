// Communication topologies.
//
// The paper restricts applications to a common set of regular synchronous
// topologies (1-D, 2-D, ring, tree, broadcast); the restriction is what
// makes accurate offline benchmarking of communication costs possible.
// This module defines the topology set and the directed message pattern of
// one synchronous communication cycle for each.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/ids.hpp"

namespace netpart {

enum class Topology {
  OneD,       ///< chain: exchange with north/south neighbours
  Ring,       ///< unidirectional ring: send to successor
  TwoD,       ///< near-square mesh: exchange with 4-neighbourhood
  Tree,       ///< binary tree: exchange along tree edges
  Broadcast,  ///< root sends to every other processor
};

std::string to_string(Topology t);
Topology topology_from_string(std::string_view name);

/// All supported topologies, for parameterised tests and calibration sweeps.
const std::vector<Topology>& all_topologies();

/// Bandwidth-limited topologies (the paper's example: broadcast) cannot
/// exploit per-segment private bandwidth: the offered load is linear in the
/// *total* processor count, so the Eq. 2 max-over-clusters rule does not
/// apply to them.
bool is_bandwidth_limited(Topology t);

/// Directed (sender, receiver) pairs of one synchronous communication
/// cycle among `p` ranks.  Deterministic order: by sender rank, then by
/// the sender's neighbour order.
std::vector<std::pair<GlobalRank, GlobalRank>> cycle_messages(Topology t,
                                                              int p);

/// Ranks `rank` sends to during one cycle.
std::vector<GlobalRank> send_neighbors(Topology t, GlobalRank rank, int p);

/// Ranks `rank` receives from during one cycle (the transpose pattern).
std::vector<GlobalRank> recv_neighbors(Topology t, GlobalRank rank, int p);

/// Total directed messages in one cycle (== cycle_messages(t, p).size()).
std::int64_t messages_per_cycle(Topology t, int p);

/// Mesh shape used by the TwoD pattern: rows x cols with rows*cols >= p,
/// rows <= cols, as square as possible.
std::pair<int, int> mesh_shape(int p);

}  // namespace netpart

#include "util/config.hpp"

#include <cstdlib>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace netpart {

Config Config::from_args(const std::vector<std::string>& args) {
  Config cfg;
  for (const std::string& arg : args) {
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("expected key=value, got: " + arg);
    }
    cfg.set(std::string(trim(arg.substr(0, eq))),
            std::string(trim(arg.substr(eq + 1))));
  }
  return cfg;
}

Config Config::from_args(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return from_args(args);
}

Config Config::from_string(const std::string& text) {
  Config cfg;
  for (const std::string& raw_line : split(text, '\n')) {
    std::string_view line = trim(raw_line);
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = trim(line.substr(0, hash));
    }
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ConfigError("expected key=value line, got: " +
                        std::string(line));
    }
    cfg.set(std::string(trim(line.substr(0, eq))),
            std::string(trim(line.substr(eq + 1))));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  NP_REQUIRE(!key.empty(), "config key must be non-empty");
  entries_[key] = value;
}

bool Config::contains(const std::string& key) const {
  return entries_.count(key) > 0;
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(const std::string& key,
                           const std::string& dflt) const {
  return get(key).value_or(dflt);
}

std::int64_t Config::get_int_or(const std::string& key,
                                std::int64_t dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    throw ConfigError("config key '" + key + "' is not an integer: " + *v);
  }
  return parsed;
}

double Config::get_double_or(const std::string& key, double dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    throw ConfigError("config key '" + key + "' is not a number: " + *v);
  }
  return parsed;
}

bool Config::get_bool_or(const std::string& key, bool dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  const std::string lower = to_lower(*v);
  if (lower == "true" || lower == "1" || lower == "yes") return true;
  if (lower == "false" || lower == "0" || lower == "no") return false;
  throw ConfigError("config key '" + key + "' is not a boolean: " + *v);
}

std::vector<std::int64_t> Config::get_int_list_or(
    const std::string& key, std::vector<std::int64_t> dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  std::vector<std::int64_t> out;
  for (const std::string& piece : split(*v, ',')) {
    const std::string_view t = trim(piece);
    if (t.empty()) continue;
    char* end = nullptr;
    const std::string tmp(t);
    const long long parsed = std::strtoll(tmp.c_str(), &end, 10);
    if (end == tmp.c_str() || *end != '\0') {
      throw ConfigError("config key '" + key +
                        "' has a non-integer element: " + tmp);
    }
    out.push_back(parsed);
  }
  if (out.empty()) {
    throw ConfigError("config key '" + key + "' is an empty list");
  }
  return out;
}

}  // namespace netpart

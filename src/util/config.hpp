// Key-value configuration.
//
// Bench binaries and examples accept small "key=value" overrides (problem
// size, seed, iteration count) either from argv or a file with one entry per
// line ('#' comments).  Typed getters validate and convert.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace netpart {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens; later duplicates win.  Tokens without '='
  /// throw ConfigError.
  static Config from_args(const std::vector<std::string>& args);
  static Config from_args(int argc, const char* const* argv);

  /// Parse file contents (not a path): one key=value per line, '#' comments.
  static Config from_string(const std::string& text);

  void set(const std::string& key, const std::string& value);
  bool contains(const std::string& key) const;

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& dflt) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t dflt) const;
  double get_double_or(const std::string& key, double dflt) const;
  bool get_bool_or(const std::string& key, bool dflt) const;

  /// Comma-separated list of integers, e.g. "60,300,600,1200".
  std::vector<std::int64_t> get_int_list_or(
      const std::string& key, std::vector<std::int64_t> dflt) const;

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace netpart

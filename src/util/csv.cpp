#include "util/csv.hpp"

#include "util/error.hpp"

namespace netpart {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> headers)
    : os_(os), width_(headers.size()) {
  NP_REQUIRE(width_ > 0, "csv needs at least one column");
  write_row(headers);
  rows_ = 0;  // header does not count
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  NP_REQUIRE(cells.size() == width_, "csv row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace netpart

// Minimal CSV writer: bench binaries optionally dump machine-readable series
// alongside the ASCII tables so plots can be regenerated.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace netpart {

/// Streams rows of comma-separated values with proper quoting.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& os, std::vector<std::string> headers);

  /// Write one row; must match the header width.
  void write_row(const std::vector<std::string>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  static std::string escape(const std::string& cell);

  std::ostream& os_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

}  // namespace netpart

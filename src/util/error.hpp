// Error handling primitives for the netpart library.
//
// The library throws exceptions derived from netpart::Error for programmer
// errors and unsatisfiable requests.  Hot paths (the simulator event loop)
// use NP_ASSERT, which is active in all build types: the simulator is the
// measurement instrument, and a silently-corrupt instrument is worse than a
// crash.
#pragma once

#include <stdexcept>
#include <string>

namespace netpart {

/// Base class for all netpart errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A request that cannot be satisfied (e.g. partitioning an empty network).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Internal invariant violation; indicates a bug in the library itself.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// Configuration file / key errors.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw LogicError(std::string("assertion failed: ") + expr + " at " + file +
                   ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace netpart

/// Always-on assertion: throws netpart::LogicError on failure.
#define NP_ASSERT(expr)                                            \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::netpart::detail::assert_fail(#expr, __FILE__, __LINE__);   \
    }                                                              \
  } while (false)

/// Argument validation: throws netpart::InvalidArgument with a message.
#define NP_REQUIRE(expr, msg)                          \
  do {                                                 \
    if (!(expr)) {                                     \
      throw ::netpart::InvalidArgument(                \
          std::string(msg) + " (violated: " #expr ")"); \
    }                                                  \
  } while (false)

#include "util/hash.hpp"

#include <bit>
#include <cmath>
#include <limits>

namespace netpart {

Fnv1a& Fnv1a::bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    state_ ^= static_cast<std::uint64_t>(p[i]);
    state_ *= kPrime;
  }
  return *this;
}

Fnv1a& Fnv1a::u8(std::uint8_t v) { return bytes(&v, 1); }

Fnv1a& Fnv1a::u32(std::uint32_t v) {
  unsigned char le[4];
  for (int i = 0; i < 4; ++i) {
    le[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
  return bytes(le, sizeof(le));
}

Fnv1a& Fnv1a::u64(std::uint64_t v) {
  unsigned char le[8];
  for (int i = 0; i < 8; ++i) {
    le[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
  return bytes(le, sizeof(le));
}

Fnv1a& Fnv1a::i32(std::int32_t v) {
  return u32(static_cast<std::uint32_t>(v));
}

Fnv1a& Fnv1a::i64(std::int64_t v) {
  return u64(static_cast<std::uint64_t>(v));
}

Fnv1a& Fnv1a::f64(double v) {
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  if (v == 0.0) v = 0.0;  // -0.0 == 0.0, canonicalise the bit pattern
  return u64(std::bit_cast<std::uint64_t>(v));
}

Fnv1a& Fnv1a::str(std::string_view s) {
  u64(static_cast<std::uint64_t>(s.size()));
  return bytes(s.data(), s.size());
}

std::uint64_t fnv1a(std::string_view s) {
  return Fnv1a().bytes(s.data(), s.size()).value();
}

}  // namespace netpart

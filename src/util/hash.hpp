// Endian/width-stable hashing (64-bit FNV-1a).
//
// Cache keys for partition decisions must be reproducible across platforms:
// the same request on a big-endian 32-bit box and a little-endian 64-bit box
// must hash identically, or a shared decision store would silently never
// hit.  Every ingest method therefore serialises its input to an explicit
// little-endian byte sequence of fixed width before feeding the FNV-1a
// state; std::hash (implementation-defined) is never used.  Strings and
// vectors are length-prefixed so adjacent fields cannot collide by
// concatenation ("ab"+"c" vs "a"+"bc").
#pragma once

#include <cstdint>
#include <string_view>

namespace netpart {

/// Incremental 64-bit FNV-1a hasher.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  /// Feed raw bytes.
  Fnv1a& bytes(const void* data, std::size_t len);

  /// Fixed-width integers, serialised little-endian.
  Fnv1a& u8(std::uint8_t v);
  Fnv1a& u32(std::uint32_t v);
  Fnv1a& u64(std::uint64_t v);
  Fnv1a& i32(std::int32_t v);
  Fnv1a& i64(std::int64_t v);

  /// IEEE-754 bit pattern, with -0.0 canonicalised to +0.0 and every NaN
  /// to one quiet NaN so equal-comparing values hash equally.
  Fnv1a& f64(double v);

  /// Length-prefixed string.
  Fnv1a& str(std::string_view s);

  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot convenience: FNV-1a of a byte string (no length prefix, the
/// classic reference definition -- matches published test vectors).
std::uint64_t fnv1a(std::string_view s);

}  // namespace netpart

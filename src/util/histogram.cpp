#include "util/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace netpart {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  NP_REQUIRE(lo < hi, "histogram range must be non-empty");
  NP_REQUIRE(buckets >= 1, "histogram needs at least one bucket");
}

void Histogram::add(double value) {
  const double span = hi_ - lo_;
  const double pos = (value - lo_) / span * static_cast<double>(
                                                counts_.size());
  const auto clamped = static_cast<std::size_t>(std::clamp<double>(
      pos, 0.0, static_cast<double>(counts_.size() - 1)));
  ++counts_[clamped];
  ++total_;
}

std::size_t Histogram::bucket(std::size_t index) const {
  NP_REQUIRE(index < counts_.size(), "bucket index out of range");
  return counts_[index];
}

double Histogram::bucket_lo(std::size_t index) const {
  NP_REQUIRE(index < counts_.size(), "bucket index out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(index) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t bar_width) const {
  std::size_t max_count = 1;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        bar_width * counts_[i] / max_count);
    os << pad_left(format_double(bucket_lo(i), 2), 10) << " | "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace netpart

// Fixed-width histogram for benchmark reporting (latency and cycle-time
// distributions).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace netpart {

class Histogram {
 public:
  /// Buckets span [lo, hi) evenly; values outside clamp into the end
  /// buckets.  Requires lo < hi and buckets >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double value);

  std::size_t count() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t index) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Lower edge of a bucket.
  double bucket_lo(std::size_t index) const;

  /// ASCII rendering: one line per bucket with a proportional bar.
  std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace netpart

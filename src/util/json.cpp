#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/error.hpp"

namespace netpart {

JsonValue::JsonValue(bool v) : type_(Type::Bool), bool_(v) {}
JsonValue::JsonValue(int v)
    : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
JsonValue::JsonValue(std::int64_t v) : type_(Type::Int), int_(v) {}
JsonValue::JsonValue(std::uint64_t v) : type_(Type::Int) {
  NP_REQUIRE(v <= static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max()),
             "JSON integer out of range");
  int_ = static_cast<std::int64_t>(v);
}
JsonValue::JsonValue(double v) : type_(Type::Double), double_(v) {}
JsonValue::JsonValue(const char* v) : type_(Type::String), string_(v) {}
JsonValue::JsonValue(std::string v)
    : type_(Type::String), string_(std::move(v)) {}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::Object;
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::Array;
  return v;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  NP_ASSERT(type_ == Type::Object);
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  NP_ASSERT(type_ == Type::Array);
  items_.push_back(std::move(value));
  return *this;
}

void JsonValue::write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Type::Int: {
      char buf[24];
      const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), int_);
      NP_ASSERT(ec == std::errc());
      out.append(buf, p);
      break;
    }
    case Type::Double: {
      // JSON has no NaN/Inf; render them as null like most emitters.
      if (!std::isfinite(double_)) {
        out += "null";
        break;
      }
      char buf[32];
      const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), double_);
      NP_ASSERT(ec == std::errc());
      out.append(buf, p);
      break;
    }
    case Type::String:
      write_escaped(out, string_);
      break;
    case Type::Array: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        write_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

}  // namespace netpart

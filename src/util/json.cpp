#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/error.hpp"

namespace netpart {

JsonValue::JsonValue(bool v) : type_(Type::Bool), bool_(v) {}
JsonValue::JsonValue(int v)
    : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
JsonValue::JsonValue(std::int64_t v) : type_(Type::Int), int_(v) {}
JsonValue::JsonValue(std::uint64_t v) : type_(Type::Int) {
  NP_REQUIRE(v <= static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max()),
             "JSON integer out of range");
  int_ = static_cast<std::int64_t>(v);
}
JsonValue::JsonValue(double v) : type_(Type::Double), double_(v) {}
JsonValue::JsonValue(const char* v) : type_(Type::String), string_(v) {}
JsonValue::JsonValue(std::string v)
    : type_(Type::String), string_(std::move(v)) {}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::Object;
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::Array;
  return v;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  NP_ASSERT(type_ == Type::Object);
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  NP_ASSERT(type_ == Type::Array);
  items_.push_back(std::move(value));
  return *this;
}

void JsonValue::write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Type::Int: {
      char buf[24];
      const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), int_);
      NP_ASSERT(ec == std::errc());
      out.append(buf, p);
      break;
    }
    case Type::Double: {
      // JSON has no NaN/Inf; render them as null like most emitters.
      if (!std::isfinite(double_)) {
        out += "null";
        break;
      }
      char buf[32];
      const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), double_);
      NP_ASSERT(ec == std::errc());
      out.append(buf, p);
      break;
    }
    case Type::String:
      write_escaped(out, string_);
      break;
    case Type::Array: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        write_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  NP_ASSERT(type_ == Type::Object);
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t JsonValue::size() const {
  NP_ASSERT(type_ == Type::Array);
  return items_.size();
}

const JsonValue& JsonValue::at(std::size_t index) const {
  NP_ASSERT(type_ == Type::Array);
  NP_ASSERT(index < items_.size());
  return items_[index];
}

bool JsonValue::as_bool() const {
  NP_ASSERT(type_ == Type::Bool);
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  NP_ASSERT(type_ == Type::Int);
  return int_;
}

double JsonValue::as_double() const {
  NP_ASSERT(type_ == Type::Int || type_ == Type::Double);
  return type_ == Type::Int ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::as_string() const {
  NP_ASSERT(type_ == Type::String);
  return string_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  NP_ASSERT(type_ == Type::Object);
  return members_;
}

namespace {

/// Recursive-descent JSON parser over a string_view; tracks the byte
/// offset for error messages.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ConfigError("json parse error at offset " + std::to_string(pos_) +
                      ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(key, parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The emitter only produces \u escapes for control characters;
          // encode the general case as UTF-8 anyway.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (!is_double) {
      std::int64_t v = 0;
      const auto [p, ec] = std::from_chars(first, last, v);
      if (ec == std::errc() && p == last) return JsonValue(v);
      // Fall through: out-of-range integers degrade to double.
    }
    double v = 0.0;
    const auto [p, ec] = std::from_chars(first, last, v);
    if (ec != std::errc() || p != last) fail("bad number");
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace netpart

// Minimal deterministic JSON emitter.
//
// Bench results and service metrics are exported as machine-readable JSON.
// Determinism is the point: object members render in insertion order,
// doubles render via std::to_chars (shortest round-trip form, no locale),
// so byte-identical inputs always produce byte-identical files and a diff
// of two BENCH_*.json runs shows only genuine changes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace netpart {

class JsonValue {
 public:
  /// Null by default.
  JsonValue() = default;
  JsonValue(bool v);                 // NOLINT(google-explicit-constructor)
  JsonValue(int v);                  // NOLINT(google-explicit-constructor)
  JsonValue(std::int64_t v);         // NOLINT(google-explicit-constructor)
  JsonValue(std::uint64_t v);        // NOLINT(google-explicit-constructor)
  JsonValue(double v);               // NOLINT(google-explicit-constructor)
  JsonValue(const char* v);          // NOLINT(google-explicit-constructor)
  JsonValue(std::string v);          // NOLINT(google-explicit-constructor)

  static JsonValue object();
  static JsonValue array();

  /// Add/replace an object member (insertion order preserved; setting an
  /// existing key overwrites in place).  Throws LogicError on non-objects.
  JsonValue& set(const std::string& key, JsonValue value);

  /// Append an array element.  Throws LogicError on non-arrays.
  JsonValue& push(JsonValue value);

  /// Serialise.  indent = 0 is compact; > 0 pretty-prints with that many
  /// spaces per level and a trailing newline at top level.
  std::string dump(int indent = 0) const;

 private:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  void write(std::string& out, int indent, int depth) const;
  static void write_escaped(std::string& out, const std::string& s);

  Type type_ = Type::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace netpart

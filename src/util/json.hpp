// Minimal deterministic JSON emitter and parser.
//
// Bench results and service metrics are exported as machine-readable JSON.
// Determinism is the point: object members render in insertion order,
// doubles render via std::to_chars (shortest round-trip form, no locale),
// so byte-identical inputs always produce byte-identical files and a diff
// of two BENCH_*.json runs shows only genuine changes.
//
// parse() is the inverse: the telemetry tier round-trips its Chrome-trace
// exports through it (tests and the tier1 --obs smoke stage validate trace
// files this way).  Numbers parse via std::from_chars, so dump(parse(x))
// reproduces the emitter's shortest-round-trip doubles exactly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace netpart {

class JsonValue {
 public:
  /// Null by default.
  JsonValue() = default;
  JsonValue(bool v);                 // NOLINT(google-explicit-constructor)
  JsonValue(int v);                  // NOLINT(google-explicit-constructor)
  JsonValue(std::int64_t v);         // NOLINT(google-explicit-constructor)
  JsonValue(std::uint64_t v);        // NOLINT(google-explicit-constructor)
  JsonValue(double v);               // NOLINT(google-explicit-constructor)
  JsonValue(const char* v);          // NOLINT(google-explicit-constructor)
  JsonValue(std::string v);          // NOLINT(google-explicit-constructor)

  static JsonValue object();
  static JsonValue array();

  /// Parse a complete JSON document (trailing whitespace allowed, nothing
  /// else).  Throws ConfigError with a byte offset on malformed input.
  static JsonValue parse(std::string_view text);

  /// Add/replace an object member (insertion order preserved; setting an
  /// existing key overwrites in place).  Throws LogicError on non-objects.
  JsonValue& set(const std::string& key, JsonValue value);

  /// Append an array element.  Throws LogicError on non-arrays.
  JsonValue& push(JsonValue value);

  /// Serialise.  indent = 0 is compact; > 0 pretty-prints with that many
  /// spaces per level and a trailing newline at top level.
  std::string dump(int indent = 0) const;

  // --- inspection (for parsed documents) ------------------------------
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const {
    return type_ == Type::Int || type_ == Type::Double;
  }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Object member lookup; nullptr when absent.  Throws LogicError on
  /// non-objects.
  const JsonValue* find(const std::string& key) const;

  /// Array element count / access.  Throws LogicError on non-arrays.
  std::size_t size() const;
  const JsonValue& at(std::size_t index) const;

  /// Typed extraction; throws LogicError on type mismatch.  as_double()
  /// accepts integers.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Object members in insertion order.  Throws LogicError on non-objects.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

 private:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  void write(std::string& out, int indent, int depth) const;
  static void write_escaped(std::string& out, const std::string& s);

  Type type_ = Type::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace netpart

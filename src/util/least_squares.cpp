#include "util/least_squares.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace netpart {

std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 std::size_t n) {
  NP_REQUIRE(a.size() == n * n && b.size() == n, "solve_linear shape");
  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      throw LogicError("solve_linear: singular system");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[pivot * n + c], a[col * n + c]);
      }
      std::swap(b[pivot], b[col]);
    }
    const double diag = a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a[r * n + c] -= factor * a[col * n + c];
      }
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) {
      acc -= a[ri * n + c] * x[c];
    }
    x[ri] = acc / a[ri * n + ri];
  }
  return x;
}

std::vector<double> least_squares(std::span<const std::vector<double>> rows,
                                  std::span<const double> ys,
                                  std::size_t num_params) {
  NP_REQUIRE(rows.size() == ys.size(), "least_squares: rows/ys mismatch");
  NP_REQUIRE(rows.size() >= num_params,
             "least_squares: underdetermined system");
  // Normal equations: (X^T X) beta = X^T y.
  std::vector<double> xtx(num_params * num_params, 0.0);
  std::vector<double> xty(num_params, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    NP_REQUIRE(rows[r].size() == num_params, "least_squares: ragged row");
    for (std::size_t i = 0; i < num_params; ++i) {
      xty[i] += rows[r][i] * ys[r];
      for (std::size_t j = 0; j < num_params; ++j) {
        xtx[i * num_params + j] += rows[r][i] * rows[r][j];
      }
    }
  }
  return solve_linear(std::move(xtx), std::move(xty), num_params);
}

Eq1Fit fit_eq1(std::span<const Sample2D> samples) {
  NP_REQUIRE(samples.size() >= 4, "fit_eq1: need >= 4 samples");
  std::vector<std::vector<double>> rows;
  std::vector<double> ys;
  rows.reserve(samples.size());
  ys.reserve(samples.size());
  for (const Sample2D& s : samples) {
    rows.push_back({1.0, s.p, s.b, s.b * s.p});
    ys.push_back(s.cost);
  }
  const std::vector<double> beta = least_squares(rows, ys, 4);
  Eq1Fit fit;
  fit.c1 = beta[0];
  fit.c2 = beta[1];
  fit.c3 = beta[2];
  fit.c4 = beta[3];
  std::vector<double> pred;
  pred.reserve(samples.size());
  for (const Sample2D& s : samples) {
    pred.push_back(fit.evaluate(s.b, s.p));
  }
  fit.r2 = r_squared(ys, pred);
  return fit;
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  NP_REQUIRE(xs.size() == ys.size() && xs.size() >= 2, "fit_line shape");
  std::vector<std::vector<double>> rows;
  rows.reserve(xs.size());
  for (double x : xs) rows.push_back({1.0, x});
  const std::vector<double> beta =
      least_squares(rows, ys, 2);
  LineFit fit;
  fit.intercept = beta[0];
  fit.slope = beta[1];
  std::vector<double> pred;
  pred.reserve(xs.size());
  for (double x : xs) pred.push_back(fit.intercept + fit.slope * x);
  fit.r2 = r_squared(ys, pred);
  return fit;
}

}  // namespace netpart

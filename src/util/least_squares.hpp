// Ordinary least squares for small design matrices.
//
// The calibration layer fits the paper's Eq. 1 cost model
//     T(b, p) = c1 + c2*p + c3*b + c4*b*p
// from benchmark samples: a 4-parameter linear model.  The systems are tiny
// (tens of samples, <= 8 parameters), so we solve the normal equations with
// partially-pivoted Gaussian elimination rather than pulling in a LAPACK
// dependency.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace netpart {

/// Solve min ||X beta - y||^2 for beta.
///
/// `rows` holds the design matrix row-major; every row must have
/// `num_params` entries and `ys` one observation per row.  Throws
/// InvalidArgument on shape mismatch and LogicError if the normal equations
/// are singular (collinear design).
std::vector<double> least_squares(std::span<const std::vector<double>> rows,
                                  std::span<const double> ys,
                                  std::size_t num_params);

/// Solve the square linear system A x = b in place (partial pivoting).
/// A is n x n row-major.  Throws LogicError if singular.
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 std::size_t n);

/// One observation of a bivariate linear-in-parameters model.
struct Sample2D {
  double p = 0.0;      ///< number of processors
  double b = 0.0;      ///< bytes per message
  double cost = 0.0;   ///< observed cost
};

/// Fitted coefficients of Eq. 1: cost = c1 + c2*p + b*(c3 + c4*p).
struct Eq1Fit {
  double c1 = 0.0;  ///< fixed latency
  double c2 = 0.0;  ///< per-processor latency
  double c3 = 0.0;  ///< per-byte cost
  double c4 = 0.0;  ///< per-byte-per-processor cost
  double r2 = 0.0;  ///< goodness of fit on the training samples

  double evaluate(double b, double p) const {
    return c1 + c2 * p + b * (c3 + c4 * p);
  }
};

/// Fit Eq. 1 to samples.  Requires >= 4 samples spanning at least two
/// distinct p values and two distinct b values.
Eq1Fit fit_eq1(std::span<const Sample2D> samples);

/// Fit a one-dimensional line cost = slope*b + intercept (used for the
/// router and coercion per-byte costs).  Requires >= 2 distinct b values.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

}  // namespace netpart

#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace netpart {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Logger::log(LogLevel level, const std::string& message) {
  if (level < Logger::level()) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

const char* Logger::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "trace";
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
  }
  return "?";
}

}  // namespace netpart

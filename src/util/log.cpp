#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace netpart {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
// Serialises writers so concurrent lines (service workers, the availability
// churner) never interleave mid-line.
std::mutex g_write_mutex;
}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Logger::log(LogLevel level, const std::string& message) {
  if (level < Logger::level()) return;
  // One fprintf emits the whole line, and the lock keeps distinct calls
  // from racing on the level check / stream position.
  std::lock_guard lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

const char* Logger::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "trace";
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
  }
  return "?";
}

}  // namespace netpart

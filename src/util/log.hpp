// Levelled logging.
//
// The simulator and partitioner are libraries; they never print unless the
// embedding program raises the log level.  Benchmarks raise it to Info to
// narrate calibration progress; tests leave it at Warn.
#pragma once

#include <sstream>
#include <string>

namespace netpart {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Process-wide log configuration.
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  /// Emit if `level` >= the configured level.  Thread-safe: the service
  /// worker pool logs concurrently, so each call formats its whole line
  /// under a lock and writes it to stderr in one piece.
  static void log(LogLevel level, const std::string& message);

  static const char* level_name(LogLevel level);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::log(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace netpart

#define NP_LOG(np_log_level)                                 \
  if (::netpart::Logger::level() > (np_log_level)) {         \
  } else                                                     \
    ::netpart::detail::LogLine(np_log_level)

#define NP_LOG_INFO NP_LOG(::netpart::LogLevel::Info)
#define NP_LOG_DEBUG NP_LOG(::netpart::LogLevel::Debug)
#define NP_LOG_WARN NP_LOG(::netpart::LogLevel::Warn)

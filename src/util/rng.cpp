#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netpart {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;

std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t Rng::next_u64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  return mix(state_);
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  NP_REQUIRE(lo <= hi, "next_int requires lo <= hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Multiply-shift rejection-free mapping; bias is < 2^-64 * range, which is
  // negligible for the ranges the simulator uses.
  const std::uint64_t v = next_u64();
  const unsigned __int128 m = static_cast<unsigned __int128>(v) * range;
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_gaussian(double stddev) {
  // Box-Muller; discard the second variate to keep the state machine simple
  // and substream derivation cheap.
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  return stddev * std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::next_exponential(double mean) {
  NP_REQUIRE(mean > 0.0, "exponential mean must be positive");
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::stream(std::uint64_t salt) const {
  // Mixing the current state with a salted constant yields substreams whose
  // sequences are indistinguishable from independent SplitMix64 generators.
  return Rng(mix(state_ ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                 0xd1b54a32d192ed03ULL));
}

}  // namespace netpart

// Deterministic random number generation.
//
// The simulator must be exactly reproducible: a given seed produces the same
// event sequence on every platform.  We therefore avoid std::*_distribution
// (whose algorithms are implementation-defined) and implement the small set
// of distributions we need on top of SplitMix64, which is fast, well mixed,
// and trivially portable.
//
// Rng::stream() derives statistically independent substreams so that, e.g.,
// packet-loss decisions and load fluctuations never share a sequence --
// adding a consumer of randomness cannot perturb unrelated components.
#pragma once

#include <cstdint>

namespace netpart {

/// SplitMix64 generator with derived substreams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Zero-mean Gaussian via Box-Muller (deterministic, portable).
  double next_gaussian(double stddev);

  /// Exponential with the given mean (> 0).
  double next_exponential(double mean);

  /// Derive an independent substream; `salt` identifies the consumer.
  Rng stream(std::uint64_t salt) const;

 private:
  std::uint64_t state_;
};

}  // namespace netpart

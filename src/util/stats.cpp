#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/histogram.hpp"

namespace netpart {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double sample_stddev(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double histogram_quantile(const Histogram& h, double q) {
  NP_REQUIRE(h.count() > 0, "quantile of empty histogram");
  NP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  const double target = q * static_cast<double>(h.count());
  const double width =
      (h.hi() - h.lo()) / static_cast<double>(h.bucket_count());
  double cumulative = 0.0;
  for (std::size_t b = 0; b < h.bucket_count(); ++b) {
    const auto in_bucket = static_cast<double>(h.bucket(b));
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      const double frac =
          std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return h.bucket_lo(b) + width * frac;
    }
    cumulative += in_bucket;
  }
  return h.hi();  // q == 1 with everything clamped into the last bucket
}

QuantileSummary summarize_quantiles(const Histogram& h) {
  return QuantileSummary{
      .p50 = histogram_quantile(h, 0.50),
      .p90 = histogram_quantile(h, 0.90),
      .p95 = histogram_quantile(h, 0.95),
      .p99 = histogram_quantile(h, 0.99),
  };
}

double percentile(std::vector<double> xs, double q) {
  NP_REQUIRE(!xs.empty(), "percentile of empty sample");
  NP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double r_squared(std::span<const double> observed,
                 std::span<const double> predicted) {
  NP_REQUIRE(observed.size() == predicted.size() && !observed.empty(),
             "r_squared needs equal-length non-empty samples");
  const double obs_mean = mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double r = observed[i] - predicted[i];
    const double d = observed[i] - obs_mean;
    ss_res += r * r;
    ss_tot += d * d;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace netpart

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace netpart {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double sample_stddev(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double percentile(std::vector<double> xs, double q) {
  NP_REQUIRE(!xs.empty(), "percentile of empty sample");
  NP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double r_squared(std::span<const double> observed,
                 std::span<const double> predicted) {
  NP_REQUIRE(observed.size() == predicted.size() && !observed.empty(),
             "r_squared needs equal-length non-empty samples");
  const double obs_mean = mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double r = observed[i] - predicted[i];
    const double d = observed[i] - obs_mean;
    ss_res += r * r;
    ss_tot += d * d;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace netpart

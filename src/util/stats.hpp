// Streaming and batch statistics used by the calibration benchmarks and the
// experiment harnesses (the paper reports averages over multiple runs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace netpart {

/// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Half-width of the ~95% confidence interval on the mean (normal
  /// approximation; adequate for the >= 5 repetitions the harness uses).
  double ci95_halfwidth() const;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class Histogram;

/// The tail summary the service metrics report.
struct QuantileSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Streaming quantile estimate from a fixed-width Histogram: walk the
/// cumulative bucket counts to the bucket containing the q-th sample and
/// interpolate linearly inside it (samples assumed uniform within a
/// bucket).  The estimate is exact to one bucket width -- pick the
/// histogram range to match the latencies being recorded.  q in [0, 1];
/// requires a non-empty histogram.
double histogram_quantile(const Histogram& h, double q);

/// p50/p90/p95/p99 in one pass.
QuantileSummary summarize_quantiles(const Histogram& h);

/// Batch helpers over a sample vector.
double mean(std::span<const double> xs);
double sample_stddev(std::span<const double> xs);
/// Linear-interpolated percentile; q in [0, 1].  Requires non-empty input.
double percentile(std::vector<double> xs, double q);
/// Coefficient of determination of predictions vs observations.
double r_squared(std::span<const double> observed,
                 std::span<const double> predicted);

}  // namespace netpart

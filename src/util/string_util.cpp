#include "util/string_util.hpp"

#include <cctype>
#include <cstdio>

namespace netpart {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

}  // namespace netpart

// Small string helpers shared by the config parser and table renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace netpart {

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Fixed-precision formatting (std::to_string prints too many digits).
std::string format_double(double v, int precision);

/// Right/left-align a string into a field of `width` (pads with spaces;
/// never truncates).
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

}  // namespace netpart

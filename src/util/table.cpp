#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace netpart {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  NP_REQUIRE(cells.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(Row{std::move(cells), /*rule=*/false});
}

void Table::add_rule() { rows_.push_back(Row{{}, /*rule=*/true}); }

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.rule) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  const auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << pad_right(cells[c], widths[c]) << " |";
    }
    os << '\n';
  };

  if (!title.empty()) os << title << '\n';
  rule();
  line(headers_);
  rule();
  for (const Row& row : rows_) {
    if (row.rule) {
      rule();
    } else {
      line(row.cells);
    }
  }
  rule();
  return os.str();
}

}  // namespace netpart

// ASCII table rendering for the benchmark harnesses.
//
// Every bench binary reproduces one of the paper's tables/figures; this
// renderer prints them in a fixed-width layout that matches the row/column
// structure of the paper.
#pragma once

#include <string>
#include <vector>

namespace netpart {

/// A simple column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: append a separator rule between row groups.
  void add_rule();

  std::size_t num_rows() const { return rows_.size(); }

  /// Render with column padding, a header rule, and optional title.
  std::string render(const std::string& title = "") const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace netpart

// Simulated-time representation.
//
// All simulator timestamps and durations are integer nanoseconds wrapped in
// a strong type.  Integer time keeps the discrete-event engine exactly
// deterministic (no accumulation of floating-point error across millions of
// events) while nanosecond resolution is fine enough that rounding never
// shows at the millisecond scale the paper reports.
#pragma once

#include <compare>
#include <concepts>
#include <cstdint>
#include <limits>
#include <ostream>

#include "util/error.hpp"

namespace netpart {

/// A point in simulated time, or a duration, in integer nanoseconds.
///
/// SimTime is used both as an absolute timestamp (offset from simulation
/// start) and as a duration; the arithmetic is identical and keeping one
/// type avoids a proliferation of conversions in the event engine.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors.  Fractional inputs are rounded to the nearest ns.
  static constexpr SimTime nanos(std::int64_t ns) { return SimTime(ns); }
  static constexpr SimTime micros(double us) {
    return SimTime(round_ns(us * 1e3));
  }
  static constexpr SimTime millis(double ms) {
    return SimTime(round_ns(ms * 1e6));
  }
  static constexpr SimTime seconds(double s) {
    return SimTime(round_ns(s * 1e9));
  }
  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t as_nanos() const { return ns_; }
  constexpr double as_micros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double as_millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double as_seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) {
    ns_ -= other.ns_;
    return *this;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.ns_ + b.ns_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.ns_ - b.ns_);
  }
  template <std::integral I>
  friend constexpr SimTime operator*(SimTime a, I k) {
    return SimTime(a.ns_ * static_cast<std::int64_t>(k));
  }
  template <std::integral I>
  friend constexpr SimTime operator*(I k, SimTime a) {
    return SimTime(a.ns_ * static_cast<std::int64_t>(k));
  }

  /// Scale by a real factor (used by load models); rounds to nearest ns.
  friend constexpr SimTime operator*(SimTime a, double f) {
    return SimTime(round_ns(static_cast<double>(a.ns_) * f));
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.as_millis() << "ms";
  }

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr std::int64_t round_ns(double v) {
    return static_cast<std::int64_t>(v < 0 ? v - 0.5 : v + 0.5);
  }

  std::int64_t ns_ = 0;
};

}  // namespace netpart

// Tests for the load schedule and the dynamic-repartitioning executor
// (the paper's Section 7 future work).
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/decompose.hpp"
#include "exec/adaptive.hpp"
#include "exec/executor.hpp"
#include "exec/load.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

const Network& testbed() {
  static const Network net = presets::paper_testbed();
  return net;
}

// ------------------------------------------------------------------ load

TEST(LoadScheduleTest, PiecewiseConstantLookup) {
  LoadSchedule s;
  const ProcessorRef ref{0, 2};
  s.add(ref, SimTime::millis(100), 0.5);
  s.add(ref, SimTime::millis(300), 0.2);
  EXPECT_DOUBLE_EQ(s.load(ref, SimTime::zero()), 0.0);
  EXPECT_DOUBLE_EQ(s.load(ref, SimTime::millis(100)), 0.5);
  EXPECT_DOUBLE_EQ(s.load(ref, SimTime::millis(200)), 0.5);
  EXPECT_DOUBLE_EQ(s.load(ref, SimTime::millis(400)), 0.2);
  EXPECT_DOUBLE_EQ(s.load(ProcessorRef{0, 3}, SimTime::millis(200)), 0.0);
  EXPECT_DOUBLE_EQ(s.slowdown(ref, SimTime::millis(200)), 2.0);
}

TEST(LoadScheduleTest, LoadClampedBelowOne) {
  LoadSchedule s;
  s.add(ProcessorRef{0, 0}, SimTime::zero(), 5.0);
  EXPECT_LE(s.load(ProcessorRef{0, 0}, SimTime::millis(1)), 0.9);
}

TEST(LoadScheduleTest, StepSchedulesATailOfTheCluster) {
  const LoadSchedule s =
      LoadSchedule::step(testbed(), 1, 3, SimTime::millis(50), 0.4);
  EXPECT_DOUBLE_EQ(s.load(ProcessorRef{1, 2}, SimTime::millis(100)), 0.0);
  EXPECT_DOUBLE_EQ(s.load(ProcessorRef{1, 3}, SimTime::millis(100)), 0.4);
  EXPECT_DOUBLE_EQ(s.load(ProcessorRef{1, 5}, SimTime::millis(100)), 0.4);
  EXPECT_DOUBLE_EQ(s.load(ProcessorRef{1, 5}, SimTime::millis(10)), 0.0);
}

TEST(LoadScheduleTest, LoadSlowsExecutionDown) {
  const apps::StencilConfig cfg{.n = 300, .iterations = 10,
                                .overlap = false};
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  const ProcessorConfig config{4, 0};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part = balanced_partition(
      testbed(), config, clusters_by_speed(testbed()), cfg.n);
  const double unloaded =
      execute(testbed(), spec, placement, part, {}).elapsed.as_millis();
  const LoadSchedule loaded_half =
      LoadSchedule::step(testbed(), 0, 0, SimTime::zero(), 0.5);
  ExecutionOptions options;
  options.load = &loaded_half;
  const double loaded =
      execute(testbed(), spec, placement, part, options)
          .elapsed.as_millis();
  // All four processors at 0.5 load: compute takes 2x.
  EXPECT_GT(loaded, 1.6 * unloaded);
}

// -------------------------------------------------------------- adaptive

struct AdaptiveFixture {
  apps::StencilConfig cfg{.n = 1200, .iterations = 40, .overlap = false};
  ComputationSpec spec = apps::make_stencil_spec(cfg);
  ProcessorConfig config{6, 0};
  Placement placement = contiguous_placement(testbed(), config);
  PartitionVector initial = balanced_partition(
      testbed(), config, clusters_by_speed(testbed()), cfg.n);
  AdaptiveOptions adaptive{.check_interval = 5,
                           .imbalance_threshold = 1.25,
                           .pdu_bytes = 4 * 1200};
};

TEST(AdaptiveTest, ConfigRecoveryScoresAgainstExhaustiveOracle) {
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(testbed(), params);
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), cal.db, spec);

  // Degraded availability: half the fast cluster is gone.
  AvailabilitySnapshot snap;
  snap.available = {3, 6};

  // The oracle's own pick scores a perfect 1.0; a deliberately bad
  // recovery (one slow processor) scores strictly worse.
  const ConfigRecoveryReport self = evaluate_config_recovery(
      est, snap, exhaustive_partition(est, snap, {.threads = 2}).config);
  EXPECT_DOUBLE_EQ(self.ratio, 1.0);
  EXPECT_GT(self.oracle_evaluations, 0u);

  const ConfigRecoveryReport bad =
      evaluate_config_recovery(est, snap, ProcessorConfig{0, 1});
  EXPECT_GT(bad.ratio, 1.0);
  EXPECT_EQ(bad.oracle_config, self.oracle_config);
  EXPECT_DOUBLE_EQ(bad.oracle_t_c_ms, self.oracle_t_c_ms);
}

TEST(AdaptiveTest, NoLoadMeansNoRepartitions) {
  AdaptiveFixture f;
  const AdaptiveResult r = execute_adaptive(
      testbed(), f.spec, f.placement, f.initial, {}, f.adaptive);
  EXPECT_EQ(r.repartitions, 0);
  EXPECT_EQ(r.redistribution_time, SimTime::zero());
  EXPECT_EQ(r.final_partition.values(), f.initial.values());
}

TEST(AdaptiveTest, RepartitionsUnderSkewedLoadAndWins) {
  AdaptiveFixture f;
  // Halfway processors 3..5 pick up a heavy background user.
  const LoadSchedule skew =
      LoadSchedule::step(testbed(), 0, 3, SimTime::millis(500), 0.5);
  ExecutionOptions options;
  options.load = &skew;

  const AdaptiveResult adaptive = execute_adaptive(
      testbed(), f.spec, f.placement, f.initial, options, f.adaptive);
  const AdaptiveResult fixed = execute_static_chunked(
      testbed(), f.spec, f.placement, f.initial, options, f.adaptive);
  EXPECT_GT(adaptive.repartitions, 0);
  EXPECT_LT(adaptive.elapsed, fixed.elapsed);
  // The loaded processors must end with less work than the unloaded.
  EXPECT_LT(adaptive.final_partition.at(5), adaptive.final_partition.at(0));
}

TEST(AdaptiveTest, StaticChunkedMatchesPlainExecutor) {
  AdaptiveFixture f;
  const AdaptiveResult chunked = execute_static_chunked(
      testbed(), f.spec, f.placement, f.initial, {}, f.adaptive);
  const double plain =
      execute(testbed(), f.spec, f.placement, f.initial, {})
          .elapsed.as_millis();
  // Chunking inserts barriers; allow a small divergence.
  EXPECT_NEAR(chunked.elapsed.as_millis(), plain, 0.05 * plain);
}

TEST(AdaptiveTest, RedistributionCostIsCounted) {
  AdaptiveFixture f;
  const LoadSchedule skew =
      LoadSchedule::step(testbed(), 0, 3, SimTime::zero(), 0.6);
  ExecutionOptions options;
  options.load = &skew;
  const AdaptiveResult r = execute_adaptive(
      testbed(), f.spec, f.placement, f.initial, options, f.adaptive);
  ASSERT_GT(r.repartitions, 0);
  EXPECT_GT(r.redistribution_time, SimTime::zero());
}

TEST(LoadScheduleTest, RandomWalkIsBoundedAndSeeded) {
  const LoadSchedule a = LoadSchedule::random_walk(
      testbed(), Rng(5), 0.3, SimTime::seconds(1), SimTime::seconds(5));
  const LoadSchedule b = LoadSchedule::random_walk(
      testbed(), Rng(5), 0.3, SimTime::seconds(1), SimTime::seconds(5));
  for (ClusterId c = 0; c < testbed().num_clusters(); ++c) {
    for (ProcessorIndex i = 0; i < testbed().cluster(c).size(); ++i) {
      for (double t : {0.5, 2.5, 4.5}) {
        const double la = a.load(ProcessorRef{c, i}, SimTime::seconds(t));
        EXPECT_GE(la, 0.0);
        EXPECT_LE(la, 0.9);
        EXPECT_EQ(la, b.load(ProcessorRef{c, i}, SimTime::seconds(t)));
      }
    }
  }
  // Loads actually change over time for at least some processors.
  bool changed = false;
  for (ProcessorIndex i = 0; i < 6; ++i) {
    if (a.load(ProcessorRef{0, i}, SimTime::seconds(0.5)) !=
        a.load(ProcessorRef{0, i}, SimTime::seconds(4.5))) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(AdaptiveTest, ValidatesOptions) {
  AdaptiveFixture f;
  AdaptiveOptions bad = f.adaptive;
  bad.check_interval = 0;
  EXPECT_THROW(execute_adaptive(testbed(), f.spec, f.placement, f.initial,
                                {}, bad),
               InvalidArgument);
  bad = f.adaptive;
  bad.imbalance_threshold = 1.0;
  EXPECT_THROW(execute_adaptive(testbed(), f.spec, f.placement, f.initial,
                                {}, bad),
               InvalidArgument);
}

}  // namespace
}  // namespace netpart

// Static-analysis subsystem tests (DESIGN.md §11).
//
// Three layers: the diagnostics engine itself (rendering, counts, JSON
// shape), the lint suites against hand-built pathological inputs, and the
// npcheck driver's exit-code contract.  The bad_specs fixtures are golden
// tested -- text and JSON byte-for-byte -- so a diagnostic message or
// location regressing is a test failure, not a silent UX change.  The
// closing property: every artifact this repo ships (specs/*.spec, the four
// network presets, a freshly calibrated paper model) is diagnostics-clean.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/fleet_lint.hpp"
#include "analysis/model_lint.hpp"
#include "analysis/net_lint.hpp"
#include "analysis/npcheck.hpp"
#include "analysis/preflight.hpp"
#include "analysis/spec_lint.hpp"
#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/estimator.hpp"
#include "net/presets.hpp"
#include "svc/service.hpp"
#include "svc/validate.hpp"

namespace netpart::analysis {
namespace {

const std::string kSourceDir = NETPART_SOURCE_DIR;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Every fixture and the one diagnostic code it exists to trigger.
struct Fixture {
  const char* name;
  const char* code;
  bool is_error;  ///< false: the finding is a warning
};
constexpr Fixture kFixtures[] = {
    {"syntax_error", "NP-S000", true},
    {"missing_ops", "NP-S000", true},
    {"undefined_var", "NP-S001", true},
    {"unused_param", "NP-S002", false},
    {"zero_bytes", "NP-S003", true},
    {"overlap_unknown", "NP-S004", true},
    {"negative_pdus", "NP-S005", true},
    {"duplicate_phase", "NP-S006", true},
    {"param_shadows_a", "NP-S007", false},
    {"broadcast_assignment", "NP-S008", false},
    {"double_overlap", "NP-S009", false},
};

/// Lint one fixture under the same label the goldens were generated with
/// (paths in diagnostics must not depend on the build machine).
DiagnosticSink lint_fixture(const std::string& name) {
  DiagnosticSink sink;
  const std::string text =
      read_file(kSourceDir + "/tests/data/bad_specs/" + name + ".spec");
  lint_spec_text(text, "bad_specs/" + name + ".spec", sink);
  return sink;
}

/// Calibrated paper testbed shared across tests (calibration dominates the
/// runtime; every test only needs *a* valid model).
struct Testbed {
  Network net = presets::paper_testbed();
  CostModelDb db;
  Testbed() : db(net.num_clusters()) {
    CalibrationParams params;
    params.topologies = {Topology::OneD};
    db = calibrate(net, params).db;
  }
};

const Testbed& testbed() {
  static const Testbed kBed;
  return kBed;
}

// --- the diagnostics engine ----------------------------------------------

TEST(DiagnosticsTest, SinkCountsAndPredicates) {
  DiagnosticSink sink;
  EXPECT_TRUE(sink.empty());
  EXPECT_TRUE(sink.clean());

  sink.note("NP-X001", {"f", 1, 1}, "fyi");
  EXPECT_FALSE(sink.empty());
  EXPECT_TRUE(sink.clean()) << "notes never fail a run";

  sink.warning("NP-X002", {"f", 2, 1}, "odd");
  EXPECT_TRUE(sink.clean()) << "warnings never fail a run";
  EXPECT_EQ(sink.warnings(), 1);

  sink.error("NP-X003", {"f", 3, 1}, "wrong", "do it right");
  EXPECT_FALSE(sink.clean());
  EXPECT_EQ(sink.errors(), 1);
  ASSERT_EQ(sink.diagnostics().size(), 3u);
  EXPECT_EQ(sink.diagnostics()[2].fix_hint, "do it right");
}

TEST(DiagnosticsTest, TextRenderingIsCompilerStyle) {
  DiagnosticSink sink;
  sink.error("NP-S001", {"a.spec", 8, 7}, "undefined variable 'M'",
             "declare it");
  sink.warning("NP-S002", {"a.spec", 0, 0}, "param 'K' unused");
  const std::string text = sink.render_text();
  EXPECT_NE(text.find("a.spec:8:7: error: undefined variable 'M' "
                      "[NP-S001]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("  hint: declare it"), std::string::npos);
  // Unknown locations render without the :line:col chunk.
  EXPECT_NE(text.find("a.spec: warning: param 'K' unused [NP-S002]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("1 error(s), 1 warning(s)"), std::string::npos);
}

TEST(DiagnosticsTest, JsonShapeIsStable) {
  DiagnosticSink sink;
  sink.error("NP-N002", {"<network>", 0, 0}, "zero bandwidth");
  const std::string json = sink.to_json().dump();
  EXPECT_NE(json.find("\"diagnostics\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"NP-N002\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
}

// --- spec lint: fixtures -------------------------------------------------

TEST(SpecLintTest, EveryFixtureFlagsItsCodeWithALocation) {
  for (const Fixture& fixture : kFixtures) {
    const DiagnosticSink sink = lint_fixture(fixture.name);
    SCOPED_TRACE(fixture.name);
    EXPECT_FALSE(sink.empty());
    EXPECT_EQ(sink.clean(), !fixture.is_error);
    bool found = false;
    for (const Diagnostic& d : sink.diagnostics()) {
      if (d.code == fixture.code) {
        found = true;
        EXPECT_TRUE(d.loc.known())
            << d.code << " reported without a line number";
        EXPECT_GT(d.loc.column, 0) << d.code << " has no column";
      }
    }
    EXPECT_TRUE(found) << "expected " << fixture.code;
  }
}

TEST(SpecLintTest, GoldenTextPerFixture) {
  for (const Fixture& fixture : kFixtures) {
    SCOPED_TRACE(fixture.name);
    const std::string golden = read_file(
        kSourceDir + "/tests/data/bad_specs/golden/" + fixture.name + ".txt");
    EXPECT_EQ(lint_fixture(fixture.name).render_text(), golden);
  }
}

TEST(SpecLintTest, GoldenJsonPerFixture) {
  for (const Fixture& fixture : kFixtures) {
    SCOPED_TRACE(fixture.name);
    const std::string golden = read_file(
        kSourceDir + "/tests/data/bad_specs/golden/" + fixture.name +
        ".json");
    EXPECT_EQ(lint_fixture(fixture.name).to_json().dump(2), golden);
  }
}

TEST(SpecLintTest, ParseErrorsCarryLineAndColumn) {
  // The old failure mode was "parse error" with no position at all; the
  // rewritten parser must point INTO the offending expression.
  DiagnosticSink sink;
  EXPECT_FALSE(lint_spec_text("computation x\niterations 1\n"
                              "phase compute p\n  pdus 10\n  ops 3 +* 4\n",
                              "inline.spec", sink));
  ASSERT_EQ(sink.diagnostics().size(), 1u);
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_EQ(d.code, "NP-S000");
  EXPECT_EQ(d.loc.line, 5);
  EXPECT_GT(d.loc.column, 1);
}

TEST(SpecLintTest, CleanSpecProducesNoDiagnostics) {
  DiagnosticSink sink;
  EXPECT_TRUE(lint_spec_text(
      read_file(kSourceDir + "/specs/stencil.spec"), "stencil.spec", sink));
  EXPECT_TRUE(sink.empty()) << sink.render_text();
}

// --- network lint --------------------------------------------------------

ProcessorType sparc_like() {
  ProcessorType type;
  type.name = "sparc-like";
  type.flop_time = SimTime::nanos(300);
  type.int_time = SimTime::nanos(150);
  return type;
}

TEST(NetLintTest, PresetNetworksAreClean) {
  for (const auto& [name, net] :
       {std::pair<std::string, Network>{"paper", presets::paper_testbed()},
        {"fig1", presets::fig1_network()},
        {"coercion", presets::coercion_testbed()},
        {"metasystem", presets::metasystem()}}) {
    DiagnosticSink sink;
    lint_network(net, name, sink);
    EXPECT_TRUE(sink.empty()) << name << ":\n" << sink.render_text();
  }
}

TEST(NetLintTest, FlagsBandwidthAndRouterPathologies) {
  const std::vector<Cluster> clusters = {
      Cluster(0, "a", sparc_like(), 0, 4),
      Cluster(1, "b", sparc_like(), 1, 4),
      Cluster(2, "c", sparc_like(), 2, 4)};
  std::vector<Segment> segments = {{0, 0.0, SimTime::micros(100)},
                                   {1, 10e6, SimTime::micros(100)},
                                   {2, 10e6, SimTime::micros(100)}};
  // Segment 2 has no router at all: unreachable + two uncovered pairs.
  std::vector<RouterLink> routers = {
      {0, 1, SimTime::nanos(-5), SimTime::micros(50)}};

  DiagnosticSink sink;
  lint_network_parts(clusters, segments, routers, "<bad-net>", sink);
  const std::string text = sink.render_text();
  EXPECT_FALSE(sink.clean());
  EXPECT_NE(text.find("[NP-N001]"), std::string::npos) << text;  // unreachable
  EXPECT_NE(text.find("[NP-N002]"), std::string::npos) << text;  // zero bw
  EXPECT_NE(text.find("[NP-N004]"), std::string::npos) << text;  // neg delay
  EXPECT_NE(text.find("[NP-N007]"), std::string::npos) << text;  // no router
}

TEST(NetLintTest, FlagsStructuralViolations) {
  // Duplicate name, two clusters sharing segment 0, dangling segment ref.
  const std::vector<Cluster> clusters = {
      Cluster(0, "dup", sparc_like(), 0, 4),
      Cluster(1, "dup", sparc_like(), 0, 4),
      Cluster(2, "ok", sparc_like(), 7, 4)};
  const std::vector<Segment> segments = {{0, 10e6, SimTime::micros(100)},
                                         {1, 10e6, SimTime::micros(100)}};
  const std::vector<RouterLink> routers = {
      {0, 1, SimTime::nanos(600), SimTime::micros(50)}};

  DiagnosticSink sink;
  lint_network_parts(clusters, segments, routers, "<bad-net>", sink);
  const std::string text = sink.render_text();
  EXPECT_FALSE(sink.clean());
  EXPECT_NE(text.find("[NP-N003]"), std::string::npos) << text;  // dup name
  EXPECT_NE(text.find("[NP-N006]"), std::string::npos) << text;  // structure
}

// --- cost-model lint -----------------------------------------------------

TEST(ModelLintTest, CalibratedPaperModelIsCleanModuloKnownDips) {
  const Testbed& bed = testbed();
  DiagnosticSink sink;
  lint_cost_model(bed.db, bed.net, "<cost-model>", sink);
  EXPECT_TRUE(sink.clean()) << sink.render_text();
  // The paper itself observed small negative dips (handled by the |.|
  // fix-up), so warnings are allowed -- but only the monotonicity family.
  for (const Diagnostic& d : sink.diagnostics()) {
    EXPECT_TRUE(d.code == "NP-M002" || d.code == "NP-M003" ||
                d.code == "NP-M004" || d.code == "NP-M005")
        << d.code << ": " << d.message;
  }
}

TEST(ModelLintTest, FlagsNonFiniteAndNegativeFits) {
  const Network net = presets::paper_testbed();
  CostModelDb db(net.num_clusters());
  // Cluster 0: NaN coefficient.  Cluster 1: strongly negative everywhere.
  db.set_comm(0, Topology::OneD,
              Eq1Fit{std::nan(""), 0.1, 0.001, 0.0001, 0.99});
  db.set_comm(1, Topology::OneD, Eq1Fit{-5000.0, 0.0, 0.0, 0.0, 0.99});
  db.set_router(0, 1, LineFit{-0.5, 1.0, 0.9});

  DiagnosticSink sink;
  lint_cost_model(db, net, "<m>", sink);
  const std::string text = sink.render_text();
  EXPECT_FALSE(sink.clean());
  EXPECT_NE(text.find("[NP-M001]"), std::string::npos) << text;  // NaN
  EXPECT_NE(text.find("[NP-M002]"), std::string::npos) << text;  // negative
  EXPECT_NE(text.find("[NP-M007]"), std::string::npos) << text;  // slope < 0
}

TEST(ModelLintTest, FlagsShapeMismatch) {
  const Network net = presets::paper_testbed();
  CostModelDb wrong(net.num_clusters() + 1);
  DiagnosticSink sink;
  lint_cost_model(wrong, net, "<m>", sink);
  EXPECT_FALSE(sink.clean());
  ASSERT_FALSE(sink.diagnostics().empty());
  EXPECT_EQ(sink.diagnostics()[0].code, "NP-M008");
}

TEST(ModelLintTest, WarnsOnPoorResidualAndMissingFit) {
  const Network net = presets::paper_testbed();
  CostModelDb db(net.num_clusters());
  db.set_comm(0, Topology::OneD, Eq1Fit{1.0, 0.1, 0.001, 0.0001, 0.5});
  // Cluster 1 left without any fit.
  DiagnosticSink sink;
  lint_cost_model(db, net, "<m>", sink);
  const std::string text = sink.render_text();
  EXPECT_TRUE(sink.clean()) << text;
  EXPECT_NE(text.find("[NP-M005]"), std::string::npos) << text;  // r2 low
  EXPECT_NE(text.find("[NP-M006]"), std::string::npos) << text;  // no fit
}

// --- the npcheck driver --------------------------------------------------

NpcheckResult run(std::vector<std::string> args) {
  std::ostringstream out, err;
  return run_npcheck(args, out, err);
}

TEST(NpcheckTest, ExitCodeContract) {
  const std::string good = kSourceDir + "/specs/stencil.spec";
  const std::string bad =
      kSourceDir + "/tests/data/bad_specs/undefined_var.spec";
  const std::string warn =
      kSourceDir + "/tests/data/bad_specs/unused_param.spec";

  EXPECT_EQ(run({good}).exit_code, 0);
  EXPECT_EQ(run({bad}).exit_code, 1);
  EXPECT_EQ(run({warn}).exit_code, 0) << "warnings pass by default";
  EXPECT_EQ(run({"--strict", warn}).exit_code, 1) << "--strict promotes";
  EXPECT_EQ(run({good, bad}).exit_code, 1) << "any finding fails the batch";

  EXPECT_EQ(run({}).exit_code, 2) << "nothing to check";
  EXPECT_EQ(run({"--bogus-flag", good}).exit_code, 2);
  EXPECT_EQ(run({"--network"}).exit_code, 2) << "missing value";
  EXPECT_EQ(run({"--network", "bogus"}).exit_code, 2);
  EXPECT_EQ(run({"--model", "x"}).exit_code, 2) << "--model needs --network";
  EXPECT_EQ(run({"--help"}).exit_code, 0);

  // A missing file is a finding (NP-S000), not a usage error.
  const NpcheckResult missing = run({"/nonexistent/x.spec"});
  EXPECT_EQ(missing.exit_code, 1);
  ASSERT_FALSE(missing.sink.diagnostics().empty());
  EXPECT_EQ(missing.sink.diagnostics()[0].code, "NP-S000");
}

TEST(NpcheckTest, NetworkPresetsPassThroughDriver) {
  for (const char* name : {"paper", "fig1", "coercion", "metasystem"}) {
    EXPECT_EQ(run({"--network", name}).exit_code, 0) << name;
  }
}

TEST(NpcheckTest, ShippedSpecsAreDiagnosticsClean) {
  int checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           kSourceDir + "/specs")) {
    if (entry.path().extension() != ".spec") continue;
    ++checked;
    const NpcheckResult result = run({entry.path().string()});
    EXPECT_EQ(result.exit_code, 0) << entry.path() << ":\n"
                                   << result.sink.render_text();
    EXPECT_TRUE(result.sink.empty())
        << entry.path() << " should not even warn:\n"
        << result.sink.render_text();
  }
  EXPECT_GE(checked, 4) << "specs/ directory went missing?";
}

TEST(NpcheckTest, JsonOutputParsesShape) {
  std::ostringstream out, err;
  const std::string bad =
      kSourceDir + "/tests/data/bad_specs/zero_bytes.spec";
  const NpcheckResult result = run_npcheck({"--json", bad}, out, err);
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(out.str().find("\"code\": \"NP-S003\""), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("\"clean\": false"), std::string::npos);
}

TEST(NpcheckTest, FormatFlagMatchesJsonShorthand) {
  // --format=json and the legacy --json shorthand must be byte-identical;
  // scripts migrating between them must see no diff.
  const std::string bad =
      kSourceDir + "/tests/data/bad_specs/zero_bytes.spec";
  std::ostringstream json_out, json_err, fmt_out, fmt_err;
  const NpcheckResult via_json = run_npcheck({"--json", bad}, json_out,
                                             json_err);
  const NpcheckResult via_format = run_npcheck({"--format=json", bad},
                                               fmt_out, fmt_err);
  EXPECT_EQ(via_json.exit_code, via_format.exit_code);
  EXPECT_EQ(json_out.str(), fmt_out.str());
  // Separated-value spelling too.
  std::ostringstream sep_out, sep_err;
  run_npcheck({"--format", "json", bad}, sep_out, sep_err);
  EXPECT_EQ(sep_out.str(), fmt_out.str());
}

TEST(NpcheckTest, FormatTextIsDefaultAndExplicit) {
  const std::string bad =
      kSourceDir + "/tests/data/bad_specs/zero_bytes.spec";
  std::ostringstream default_out, default_err, text_out, text_err;
  run_npcheck({bad}, default_out, default_err);
  run_npcheck({"--format=text", bad}, text_out, text_err);
  EXPECT_EQ(default_out.str(), text_out.str());
  EXPECT_NE(text_out.str().find("error:"), std::string::npos);
  EXPECT_EQ(text_out.str().find("\"code\""), std::string::npos)
      << "text format must not emit JSON";
  // --format=text after --json wins (last flag takes effect).
  std::ostringstream late_out, late_err;
  run_npcheck({"--json", "--format=text", bad}, late_out, late_err);
  EXPECT_EQ(late_out.str(), text_out.str());
}

TEST(NpcheckTest, FormatFlagRejectsUnknownValue) {
  const std::string good = kSourceDir + "/specs/stencil.spec";
  std::ostringstream out, err;
  const NpcheckResult result =
      run_npcheck({"--format=yaml", good}, out, err);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(err.str().find("unknown --format value 'yaml'"),
            std::string::npos)
      << err.str();
  EXPECT_EQ(run({"--format"}).exit_code, 2) << "missing value";
}

// --- pre-flight gate + service admission ---------------------------------

TEST(PreflightTest, CalibratedTestbedPasses) {
  const Testbed& bed = testbed();
  EXPECT_NO_THROW(require_preflight(bed.net, bed.db));
  EXPECT_TRUE(preflight(bed.net, bed.db).clean());
}

TEST(PreflightTest, PoisonedModelRefusesToServe) {
  const Testbed& bed = testbed();
  CostModelDb poisoned = bed.db;
  poisoned.set_comm(0, Topology::OneD,
                    Eq1Fit{std::nan(""), 0.0, 0.0, 0.0, 0.0});
  try {
    require_preflight(bed.net, poisoned);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("NP-M001"), std::string::npos)
        << e.what();
  }
}

TEST(PreflightTest, WarningsPassTheGate) {
  // The gate short-circuits on *errors only*: a warning-severity finding
  // (here a suspicious fit residual, NP-M005) is reported in the sink but
  // must not stop the service from starting.
  const Testbed& bed = testbed();
  CostModelDb sloppy = bed.db;
  Eq1Fit fit = sloppy.comm_fit(0, Topology::OneD);
  fit.r2 = 0.5;  // below the 0.9 NP-M005 threshold; coefficients stay sane
  sloppy.set_comm(0, Topology::OneD, fit);

  const DiagnosticSink sink = preflight(bed.net, sloppy);
  EXPECT_TRUE(sink.clean());
  EXPECT_GE(sink.warnings(), 1);
  bool found = false;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == "NP-M005") found = true;
  }
  EXPECT_TRUE(found) << sink.render_text();
  EXPECT_NO_THROW(require_preflight(bed.net, sloppy));
}

TEST(PreflightTest, CollectsEveryFindingBeforeFailing) {
  // No short-circuit *within* the report: poisoning two independent
  // clusters must surface both in one pre-flight pass, so an operator
  // fixes the whole config in one round trip instead of one error per
  // restart.
  const Testbed& bed = testbed();
  CostModelDb poisoned = bed.db;
  poisoned.set_comm(0, Topology::OneD,
                    Eq1Fit{std::nan(""), 0.0, 0.0, 0.0, 0.0});
  poisoned.set_comm(1, Topology::OneD,
                    Eq1Fit{std::nan(""), 0.0, 0.0, 0.0, 0.0});
  const DiagnosticSink sink = preflight(bed.net, poisoned);
  EXPECT_FALSE(sink.clean());
  int nan_findings = 0;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == "NP-M001") ++nan_findings;
  }
  EXPECT_GE(nan_findings, 2) << sink.render_text();
  try {
    require_preflight(bed.net, poisoned);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    // The thrown message carries the full rendered report; both poisoned
    // clusters are named (the paper testbed's sparc2 and ipc).
    const std::string what = e.what();
    EXPECT_NE(what.find("T_comm[sparc2"), std::string::npos) << what;
    EXPECT_NE(what.find("T_comm[ipc"), std::string::npos) << what;
  }
}

// --- fleet config pre-flight (`fleetd --check`) ---------------------------

TEST(FleetCheckTest, ObservabilityPathClashTripsNPF007) {
  // The exact config fleetd --check runs through require_fleet: two
  // exports aimed at one file.  Golden-matched byte-for-byte so the
  // operator-facing message cannot silently regress.
  const std::string config =
      "nodes=4,replication=2,trace_out=fleet.json,metrics_out=fleet.json";
  std::ostringstream out, err;
  const NpcheckResult result = run_npcheck({"--fleet", config}, out, err);
  EXPECT_EQ(result.exit_code, 1);
  const std::string golden = read_file(
      kSourceDir + "/tests/data/fleet_check/np_f007_clash.txt");
  EXPECT_EQ(out.str(), golden);

  // fleetd's own gate sees the identical finding and refuses to start.
  const FleetLintConfig lint = parse_fleet_config(config);
  try {
    require_fleet(lint);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("NP-F007"), std::string::npos)
        << e.what();
  }
}

TEST(ValidateRequestTest, ContractTable) {
  svc::PartitionRequest good;
  good.spec = "stencil";
  good.n = 300;
  good.iterations = 10;
  EXPECT_EQ(svc::validate_request(good), nullptr);

  svc::PartitionRequest bad = good;
  bad.n = 0;
  EXPECT_NE(svc::validate_request(bad), nullptr);

  bad = good;
  bad.iterations = 0;
  EXPECT_NE(svc::validate_request(bad), nullptr);

  bad = good;
  bad.spec.clear();
  EXPECT_NE(svc::validate_request(bad), nullptr);

  bad = good;
  bad.rate_milli = {1000};
  EXPECT_NE(svc::validate_request(bad), nullptr)
      << "Partition kind must not carry rates";

  svc::PartitionRequest repart;
  repart.kind = svc::PartitionRequest::Kind::Repartition;
  repart.spec = "job";
  repart.n = 300;
  repart.rate_milli = {1000, 500};
  EXPECT_EQ(svc::validate_request(repart), nullptr);

  repart.rate_milli.clear();
  EXPECT_NE(svc::validate_request(repart), nullptr) << "no rates";

  repart.rate_milli = {1000, 0};
  EXPECT_NE(svc::validate_request(repart), nullptr) << "zero rate";

  repart.rate_milli = {1000, 500, 250, 125};
  repart.n = 3;
  EXPECT_NE(svc::validate_request(repart), nullptr)
      << "fewer PDUs than ranks";
}

TEST(ValidateRequestTest, ServiceRejectsAtAdmission) {
  const Testbed& bed = testbed();
  AvailabilityFeed feed(bed.net,
                        make_managers(bed.net, AvailabilityPolicy{}));
  svc::PartitionService service(
      bed.net, bed.db, feed,
      [](const svc::PartitionRequest& request) {
        return apps::make_stencil_spec(
            apps::StencilConfig{.n = static_cast<int>(request.n),
                                .iterations = request.iterations});
      });

  svc::PartitionRequest invalid;
  invalid.spec = "stencil";
  invalid.n = -7;
  const svc::ServiceReply reply = service.query(invalid);
  EXPECT_EQ(reply.status, svc::ServiceStatus::Failed);
  EXPECT_NE(reply.error.find("must be positive"), std::string::npos)
      << reply.error;
  // Rejected at admission: no cold compute ran, nothing was cached, and
  // the failure counter (not the request queue) absorbed it.
  EXPECT_EQ(service.metrics().counter("cold_computes").value(), 0u);
  EXPECT_EQ(service.cache().size(), 0u);
  EXPECT_EQ(service.metrics().counter("failed").value(), 1u);
}

// --- estimator checked contracts -----------------------------------------

TEST(EstimatorContractTest, RejectsVanishingPduDomain) {
  const Testbed& bed = testbed();
  // The callback is legal at ComputationSpec construction and degenerate
  // afterwards -- exactly the hole the estimator's checked contract plugs.
  auto pdus = std::make_shared<std::int64_t>(300);
  ComputationSpec spec(
      "shrinking",
      {{"c", [pdus] { return *pdus; }, [] { return 5.0; }}},
      {}, 10);
  *pdus = 0;
  EXPECT_THROW(CycleEstimator(bed.net, bed.db, spec), InvalidArgument);
}

TEST(EstimatorContractTest, RejectsNonFiniteComplexity) {
  const Testbed& bed = testbed();
  ComputationSpec spec(
      "nan-ops",
      {{"c", [] { return std::int64_t{300}; },
        [] { return std::nan(""); }}},
      {}, 10);
  EXPECT_THROW(CycleEstimator(bed.net, bed.db, spec), InvalidArgument);
}

TEST(EstimatorContractTest, MismatchedModelShapeStillRejected) {
  const Testbed& bed = testbed();
  CostModelDb wrong(bed.net.num_clusters() + 2);
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 300, .iterations = 10});
  EXPECT_THROW(CycleEstimator(bed.net, wrong, spec), InvalidArgument);
}

}  // namespace
}  // namespace netpart::analysis

// Application-level tests: the functional distributed implementations must
// reproduce their sequential references, and the annotation specs must
// describe the paper's published values.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/gauss.hpp"
#include "apps/particles.hpp"
#include "apps/stencil.hpp"
#include "core/decompose.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

class AppsFixture : public ::testing::Test {
 protected:
  Network net_ = presets::paper_testbed();
  std::vector<ClusterId> order_ = clusters_by_speed(net_);
};

// ---------------------------------------------------------------- stencil

TEST_F(AppsFixture, StencilSpecMatchesPaperAnnotations) {
  const apps::StencilConfig cfg{.n = 600, .iterations = 10,
                                .overlap = false};
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  EXPECT_EQ(spec.num_pdus(), 600);
  EXPECT_DOUBLE_EQ(spec.dominant_computation().ops_per_pdu(), 5.0 * 600);
  EXPECT_EQ(spec.dominant_communication().topology(), Topology::OneD);
  EXPECT_EQ(spec.dominant_communication().bytes_per_message(100), 4 * 600);
  EXPECT_FALSE(spec.dominant_phases_overlap());
  EXPECT_EQ(spec.iterations(), 10);
}

TEST_F(AppsFixture, Sten2SpecOverlaps) {
  const apps::StencilConfig cfg{.n = 60, .iterations = 10, .overlap = true};
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  EXPECT_TRUE(spec.dominant_phases_overlap());
  EXPECT_EQ(spec.name(), "STEN-2");
}

TEST_F(AppsFixture, SequentialStencilRelaxesTowardBoundary) {
  const apps::StencilConfig cfg{.n = 16, .iterations = 200,
                                .overlap = false};
  const std::vector<float> grid = apps::run_sequential(cfg);
  // Heat diffuses from the hot top row: the row below must have warmed.
  EXPECT_GT(grid[16 + 8], 10.0f);
  // Corners of the fixed boundary remain untouched.
  EXPECT_FLOAT_EQ(grid[0], 100.0f);
  EXPECT_FLOAT_EQ(grid[16 * 16 - 1], 0.0f);
}

TEST_F(AppsFixture, DistributedStencilBitExactSten1) {
  const apps::StencilConfig cfg{.n = 32, .iterations = 7, .overlap = false};
  const ProcessorConfig config{3, 2};
  const Placement placement = contiguous_placement(net_, config);
  const PartitionVector part =
      balanced_partition(net_, config, order_, cfg.n);
  const auto dist =
      apps::run_distributed_stencil(net_, placement, part, cfg);
  const auto seq = apps::run_sequential(cfg);
  ASSERT_EQ(dist.grid, seq);
  EXPECT_GT(dist.elapsed.as_millis(), 0.0);
}

TEST_F(AppsFixture, DistributedStencilBitExactSten2SingleRowRanks) {
  // Force single-row blocks on some ranks: the STEN-2 interior/border
  // split must still compute every row exactly once.
  const apps::StencilConfig cfg{.n = 13, .iterations = 5, .overlap = true};
  const ProcessorConfig config{6, 6};
  const Placement placement = contiguous_placement(net_, config);
  const PartitionVector part =
      balanced_partition(net_, config, order_, cfg.n);
  const auto dist =
      apps::run_distributed_stencil(net_, placement, part, cfg);
  EXPECT_EQ(dist.grid, apps::run_sequential(cfg));
}

TEST_F(AppsFixture, StencilOverlapIsFasterAtScale) {
  const ProcessorConfig config{6, 0};
  const Placement placement = contiguous_placement(net_, config);
  const int n = 120;
  const PartitionVector part = balanced_partition(net_, config, order_, n);
  const apps::StencilConfig sten1{.n = n, .iterations = 10,
                                  .overlap = false};
  const apps::StencilConfig sten2{.n = n, .iterations = 10,
                                  .overlap = true};
  const auto t1 = apps::run_distributed_stencil(net_, placement, part,
                                                sten1);
  const auto t2 = apps::run_distributed_stencil(net_, placement, part,
                                                sten2);
  EXPECT_LT(t2.elapsed, t1.elapsed);
}

// ------------------------------------------------------------------ gauss

TEST_F(AppsFixture, SequentialGaussSolvesSystem) {
  const apps::LinearSystem sys = apps::make_test_system(64, 3);
  const std::vector<double> x = apps::solve_sequential(sys);
  // Residual check.
  for (int i = 0; i < sys.n; ++i) {
    double acc = 0.0;
    for (int j = 0; j < sys.n; ++j) {
      acc += sys.a[static_cast<std::size_t>(i) * sys.n + j] *
             x[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(acc, sys.b[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST_F(AppsFixture, DistributedGaussMatchesSequential) {
  const apps::GaussConfig cfg{.n = 48};
  const ProcessorConfig config{3, 2};
  const Placement placement = contiguous_placement(net_, config);
  const PartitionVector part =
      balanced_partition(net_, config, order_, cfg.n);
  const auto dist = apps::run_distributed_gauss(net_, placement, part, cfg,
                                                /*seed=*/3);
  const std::vector<double> seq =
      apps::solve_sequential(apps::make_test_system(cfg.n, 3));
  ASSERT_EQ(dist.x.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_NEAR(dist.x[i], seq[i], 1e-9) << "x[" << i << "]";
  }
  EXPECT_GT(dist.elapsed.as_millis(), 0.0);
}

TEST_F(AppsFixture, GaussRowMappings) {
  const PartitionVector part({6, 3, 3});
  // Block: contiguous ranges.
  const auto block = apps::map_rows(part, 12, apps::RowMapping::Block);
  EXPECT_EQ(block[0], (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(block[1], (std::vector<int>{6, 7, 8}));
  // Cyclic: every rank gets exactly A_i rows, interleaved so each prefix
  // splits near the A ratio.
  const auto cyclic = apps::map_rows(part, 12, apps::RowMapping::Cyclic);
  EXPECT_EQ(cyclic[0].size(), 6u);
  EXPECT_EQ(cyclic[1].size(), 3u);
  EXPECT_EQ(cyclic[2].size(), 3u);
  // Rank 0 owns half of the first half of the matrix, not all of it.
  int rank0_in_first_half = 0;
  for (int g : cyclic[0]) {
    if (g < 6) ++rank0_in_first_half;
  }
  EXPECT_LE(rank0_in_first_half, 4);
  // All rows covered exactly once.
  std::vector<int> seen(12, 0);
  for (const auto& rows : cyclic) {
    for (int g : rows) ++seen[static_cast<std::size_t>(g)];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST_F(AppsFixture, CyclicGaussMatchesSequentialAndRunsFaster) {
  const ProcessorConfig config{4, 2};
  const Placement placement = contiguous_placement(net_, config);
  const PartitionVector part =
      balanced_partition(net_, config, order_, 48);

  apps::GaussConfig block_cfg{.n = 48, .mapping = apps::RowMapping::Block};
  apps::GaussConfig cyclic_cfg{.n = 48,
                               .mapping = apps::RowMapping::Cyclic};
  const auto block =
      apps::run_distributed_gauss(net_, placement, part, block_cfg, 7);
  const auto cyclic =
      apps::run_distributed_gauss(net_, placement, part, cyclic_cfg, 7);
  const std::vector<double> seq =
      apps::solve_sequential(apps::make_test_system(48, 7));
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_NEAR(block.x[i], seq[i], 1e-9);
    EXPECT_NEAR(cyclic.x[i], seq[i], 1e-9);
  }
  // The cyclic mapping keeps the shrinking active set balanced, so the
  // simulated elimination is faster.
  EXPECT_LT(cyclic.elapsed, block.elapsed);
}

TEST_F(AppsFixture, GaussSpecHasNonUniformAnnotations) {
  const apps::GaussConfig cfg{.n = 256};
  const ComputationSpec spec = apps::make_gauss_spec(cfg);
  EXPECT_EQ(spec.num_pdus(), 256);
  EXPECT_EQ(spec.iterations(), 256);
  EXPECT_EQ(spec.dominant_communication().topology(), Topology::Broadcast);
  EXPECT_NEAR(spec.dominant_computation().ops_per_pdu(),
              2.0 / 3.0 * 256, 1e-12);
}

// -------------------------------------------------------------- particles

TEST_F(AppsFixture, DistributedParticlesBitExact) {
  const apps::ParticleConfig cfg{.count = 200, .iterations = 25};
  const ProcessorConfig config{4, 3};
  const Placement placement = contiguous_placement(net_, config);
  const PartitionVector part =
      balanced_partition(net_, config, order_, cfg.count);
  const auto dist =
      apps::run_distributed_particles(net_, placement, part, cfg);
  const apps::ParticleState seq = apps::run_sequential_particles(cfg, 5);
  ASSERT_EQ(dist.state.position, seq.position);
  ASSERT_EQ(dist.state.velocity, seq.velocity);
}

TEST_F(AppsFixture, ParticleChainConservesMomentum) {
  // Internal spring forces are equal and opposite; with free ends the
  // total momentum change per step is zero up to floating point.
  const apps::ParticleConfig cfg{.count = 64, .iterations = 100};
  const apps::ParticleState state = apps::run_sequential_particles(cfg, 9);
  double momentum = 0.0;
  for (double v : state.velocity) momentum += v;
  EXPECT_NEAR(momentum, 0.0, 1e-9);
}

TEST_F(AppsFixture, ParticleSpecIsLatencyBound) {
  const apps::ParticleConfig cfg{.count = 10000, .iterations = 10};
  const ComputationSpec spec = apps::make_particle_spec(cfg);
  EXPECT_EQ(spec.dominant_communication().bytes_per_message(1000), 8);
  EXPECT_EQ(spec.num_pdus(), 10000);
}

}  // namespace
}  // namespace netpart

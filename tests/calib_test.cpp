// Tests for the calibration pipeline and the cost-model database.
#include <gtest/gtest.h>

#include "calib/calibrate.hpp"
#include "net/builder.hpp"
#include "net/presets.hpp"
#include "util/error.hpp"

namespace netpart {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  static const CalibrationResult& testbed_calibration() {
    static const CalibrationResult result = [] {
      CalibrationParams params;
      params.topologies = {Topology::OneD, Topology::Broadcast};
      return calibrate(presets::paper_testbed(), params);
    }();
    return result;
  }
};

TEST_F(CalibrationTest, FitsHaveExcellentQuality) {
  const CalibrationResult& cal = testbed_calibration();
  for (ClusterId c = 0; c < 2; ++c) {
    for (Topology t : {Topology::OneD, Topology::Broadcast}) {
      ASSERT_TRUE(cal.db.has_comm(c, t));
      EXPECT_GT(cal.db.comm_fit(c, t).r2, 0.99)
          << "cluster " << c << " " << to_string(t);
    }
  }
}

TEST_F(CalibrationTest, ConstantsNearPaperValues) {
  // Section 6: T_comm[C1,1-D] ~ (-.0055 + .00283 P)b + 1.1 P and
  // T_comm[C2,1-D] ~ (-.0123 + .00457 P)b + 1.9 P.  The testbed presets
  // are calibrated to land near these; allow 15%.
  const Eq1Fit& c1 = testbed_calibration().db.comm_fit(0, Topology::OneD);
  EXPECT_NEAR(c1.c2, 1.1, 0.17);
  EXPECT_NEAR(c1.c4, 0.00283, 0.0004);
  const Eq1Fit& c2 = testbed_calibration().db.comm_fit(1, Topology::OneD);
  EXPECT_NEAR(c2.c2, 1.9, 0.29);
  EXPECT_NEAR(c2.c4, 0.00457, 0.0007);
}

TEST_F(CalibrationTest, SlowerClusterCommunicatesSlower) {
  // "Communication is faster on a cluster of Sun4's than Sun3's."
  const CostModelDb& db = testbed_calibration().db;
  for (double p : {2.0, 4.0, 6.0}) {
    EXPECT_LT(db.comm_ms(0, Topology::OneD, 2400, p),
              db.comm_ms(1, Topology::OneD, 2400, p));
  }
}

TEST_F(CalibrationTest, RouterFitNearConfiguredDelay) {
  const LineFit fit = benchmark_router(presets::paper_testbed(), 0, 1,
                                       CalibrationParams{});
  EXPECT_NEAR(fit.slope, 0.0006, 0.0002);  // paper: .0006 ms/byte
  EXPECT_GT(fit.r2, 0.95);
}

TEST_F(CalibrationTest, CoercionZeroForSameFormatLinearOtherwise) {
  const LineFit same = benchmark_coercion(presets::paper_testbed(), 0, 1,
                                          CalibrationParams{});
  EXPECT_DOUBLE_EQ(same.slope, 0.0);
  const Network mixed = presets::coercion_testbed();
  const LineFit cross = benchmark_coercion(mixed, 0, 1,
                                           CalibrationParams{});
  EXPECT_NEAR(cross.slope,
              mixed.cluster(1).type().coerce_per_byte.as_millis(), 1e-9);
}

TEST_F(CalibrationTest, SamplesCoverTheGrid) {
  const CalibrationResult& cal = testbed_calibration();
  // 2 clusters x 2 topologies x p in 2..6 x 6 sizes.
  EXPECT_EQ(cal.samples.size(), 2u * 2u * 5u * 6u);
  for (const CommSample& s : cal.samples) {
    EXPECT_GT(s.cost_ms, 0.0);
  }
}

TEST_F(CalibrationTest, TwoProcessorClusterGetsReducedFit) {
  NetworkBuilder b;
  b.add_cluster("pair", presets::sparc2(), 2);
  b.add_cluster("many", presets::sun_ipc(), 4);
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(b.build(), params);
  const Eq1Fit& fit = cal.db.comm_fit(0, Topology::OneD);
  EXPECT_EQ(fit.c2, 0.0);  // p terms unidentifiable from a single p
  EXPECT_EQ(fit.c4, 0.0);
  EXPECT_GT(fit.c3, 0.0);  // but the byte slope is real
  EXPECT_GT(cal.db.comm_ms(0, Topology::OneD, 2400, 2), 0.0);
}

TEST_F(CalibrationTest, SingletonClusterSkipped) {
  NetworkBuilder b;
  b.add_cluster("solo", presets::sparc2(), 1);
  b.add_cluster("many", presets::sun_ipc(), 3);
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(b.build(), params);
  EXPECT_FALSE(cal.db.has_comm(0, Topology::OneD));
  EXPECT_TRUE(cal.db.has_comm(1, Topology::OneD));
}

TEST(CostModelDbTest, AbsoluteValueFixup) {
  // The paper: "for P2 = 2, T_comm ... may take on negative values; the
  // absolute value ... is a very good approximation".
  CostModelDb db(1);
  Eq1Fit fit;
  fit.c1 = 0.0;
  fit.c2 = 1.9;
  fit.c3 = -0.0123;
  fit.c4 = 0.00457;
  db.set_comm(0, Topology::OneD, fit);
  // At P2 = 2 and the paper's largest message the fit dips negative.
  const double raw = fit.evaluate(4800.0, 2.0);
  EXPECT_LT(raw, 0.0);
  EXPECT_DOUBLE_EQ(db.comm_ms(0, Topology::OneD, 4800.0, 2.0), -raw);
}

TEST(CostModelDbTest, SingleProcessorCostsNothing) {
  CostModelDb db(1);
  db.set_comm(0, Topology::OneD, Eq1Fit{1.0, 1.0, 0.001, 0.001, 1.0});
  EXPECT_DOUBLE_EQ(db.comm_ms(0, Topology::OneD, 5000, 1.0), 0.0);
}

TEST(CostModelDbTest, MissingFitsThrow) {
  CostModelDb db(2);
  EXPECT_THROW(db.comm_fit(0, Topology::OneD), InvalidArgument);
  EXPECT_THROW(db.comm_ms(0, Topology::OneD, 100, 4), InvalidArgument);
  EXPECT_THROW(db.router_ms(0, 1, 100), InvalidArgument);
  EXPECT_DOUBLE_EQ(db.router_ms(0, 0, 100), 0.0);  // same cluster: no hop
  EXPECT_DOUBLE_EQ(db.coerce_ms(0, 1, 100), 0.0);  // absent fit: no cost
}

TEST(CostModelDbTest, PairSlotsAreSymmetric) {
  CostModelDb db(3);
  LineFit fit;
  fit.slope = 0.001;
  db.set_router(2, 1, fit);
  EXPECT_DOUBLE_EQ(db.router_ms(1, 2, 1000), 1.0);
  EXPECT_DOUBLE_EQ(db.router_ms(2, 1, 1000), 1.0);
}

}  // namespace
}  // namespace netpart

// Chaos tier: the full pipeline under seeded random fault schedules.
//
// Each seed drives one reproducible scenario through the whole stack:
//
//   1. control plane -- the fault-tolerant availability protocol runs while
//      hosts crash and processors are revoked; it must terminate within its
//      sim-time budget, report crashed managers as dead, and agree with a
//      direct availability query for every surviving cluster;
//   2. partitioning  -- the survivor placement built from the post-fault
//      availability must never land a rank on a crashed or revoked host;
//   3. data plane    -- the distributed stencil runs under performance
//      faults (slowdowns, segment flaps, degradations); the numerics must
//      stay bit-identical to the sequential reference;
//   4. adaptation    -- the adaptive executor runs under open-ended
//      slowdowns and its recovered partition must land within a documented
//      bound of the oracle re-partition for the effective speeds.
//
// Any failure reproduces from a single integer: the seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "core/decompose.hpp"
#include "exec/adaptive.hpp"
#include "exec/executor.hpp"
#include "mmps/manager_protocol.hpp"
#include "net/availability.hpp"
#include "net/builder.hpp"
#include "net/presets.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/sim_bridge.hpp"
#include "obs/telemetry.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/netsim.hpp"
#include "sim/trace.hpp"
#include "topo/placement.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace netpart {
namespace {

constexpr int kSeeds = 20;

/// Upper bound on evaluate_recovery().ratio for the adaptive runs below.
/// The oracle knows the exact post-fault speeds; the executor only sees
/// noisy per-chunk busy times (which fold in messaging and the pre-fault
/// part of the chunk the slowdown landed in), so perfect recovery is not
/// attainable.  Empirically the 20 seeds stay well under this.
constexpr double kRecoveryBound = 1.5;

/// Fail-stop plan for the control-plane phase: crashes and revocations land
/// at t=0 (control_horizon zero) so the hosts are already dead before the
/// first token can arrive -- a manager crashing mid-protocol may
/// legitimately forward the token first and escape detection.  One short
/// flap exercises the ack retry path without exceeding it
/// (flap < ack_timeout * max_attempts).
sim::FaultPlan control_plan(std::uint64_t seed, const Network& net) {
  sim::ChaosOptions options;
  options.crashes = 2;
  options.revocations = 2;
  options.slowdowns = 0;
  options.flaps = 1;
  options.degrades = 0;
  options.control_horizon = SimTime::zero();
  options.horizon = SimTime::millis(50);
  options.max_flap = SimTime::millis(100);
  return sim::ChaosRng(seed).make_plan(net, options);
}

/// Performance-only plan for the data-plane phase: nothing crashes, so
/// every message is eventually delivered and the numerics are exact.
sim::FaultPlan perf_plan(std::uint64_t seed, const Network& net) {
  sim::ChaosOptions options;
  options.crashes = 0;
  options.revocations = 0;
  options.slowdowns = 2;
  options.flaps = 1;
  options.degrades = 1;
  options.horizon = SimTime::millis(80);
  options.max_flap = SimTime::millis(60);
  return sim::ChaosRng(seed).make_plan(net, options);
}

/// Clusters whose manager host (index 0) the plan crashes.
std::vector<ClusterId> crashed_managers(const sim::FaultPlan& plan,
                                        const Network& net) {
  std::vector<ClusterId> dead;
  for (ClusterId c = 1; c < net.num_clusters(); ++c) {
    if (plan.crashed_by(ProcessorRef{c, 0}, SimTime::max())) {
      dead.push_back(c);
    }
  }
  return dead;
}

class ChaosPipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

// ------------------------------------------------------- control plane

TEST_P(ChaosPipelineTest, ProtocolTerminatesAndReportsDeadManagers) {
  const std::uint64_t seed = GetParam();
  Network net = presets::paper_testbed();
  const sim::FaultPlan plan = control_plan(seed, net);

  // Fold the fail-stop faults into the availability view first: the
  // managers' own counts must already exclude crashed/revoked processors.
  apply_churn_to_network(net, plan.churn_events(), SimTime::max());

  sim::Engine engine;
  sim::NetSim sim(engine, net, {}, Rng(seed));
  sim::FaultInjector injector(sim, plan);
  injector.arm();

  const std::vector<ClusterManager> managers = make_managers(net, {});
  const mmps::ProtocolOptions options{};
  const mmps::ProtocolResult result =
      mmps::run_fault_tolerant_protocol(sim, managers, options);

  // Bounded: the run never exceeds its budget, crashed peers or not.
  EXPECT_LE(result.elapsed, options.budget) << "seed " << seed;
  EXPECT_TRUE(result.completed) << "seed " << seed;

  // Every crashed manager is reported dead with zero availability; every
  // surviving cluster's count matches a direct threshold query.
  const std::vector<ClusterId> expected_dead = crashed_managers(plan, net);
  EXPECT_EQ(result.dead, expected_dead) << "seed " << seed;
  for (ClusterId c = 0; c < net.num_clusters(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    const bool dead = std::find(expected_dead.begin(), expected_dead.end(),
                                c) != expected_dead.end();
    if (dead) {
      EXPECT_EQ(result.snapshot.available[i], 0) << "seed " << seed;
    } else {
      EXPECT_EQ(result.snapshot.available[i],
                managers[i].available(net))
          << "seed " << seed << " cluster " << c;
    }
  }
}

// ------------------------------------- partitioning from the survivors

TEST_P(ChaosPipelineTest, SurvivorPlacementAvoidsFaultedHosts) {
  const std::uint64_t seed = GetParam();
  Network net = presets::paper_testbed();
  const sim::FaultPlan plan = control_plan(seed, net);
  apply_churn_to_network(net, plan.churn_events(), SimTime::max());

  const std::vector<ClusterManager> managers = make_managers(net, {});
  const std::vector<ClusterId> dead = crashed_managers(plan, net);

  ProcessorConfig config(static_cast<std::size_t>(net.num_clusters()), 0);
  std::vector<std::vector<ProcessorIndex>> available(
      static_cast<std::size_t>(net.num_clusters()));
  for (ClusterId c = 0; c < net.num_clusters(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (std::find(dead.begin(), dead.end(), c) != dead.end()) {
      continue;  // a dead manager takes its whole cluster out of the pool
    }
    available[i] = managers[i].available_indices(net);
    config[i] = static_cast<int>(available[i].size());
  }
  // The spared initiator host guarantees a non-empty pool.
  ASSERT_GT(config_total(config), 0) << "seed " << seed;

  const std::vector<ClusterId> order = clusters_by_speed(net);
  const Placement placement =
      available_placement(net, config, available, order);
  ASSERT_EQ(static_cast<int>(placement.size()), config_total(config));
  for (const ProcessorRef& ref : placement) {
    EXPECT_FALSE(plan.crashed_by(ref, SimTime::max()))
        << "seed " << seed << " placed a rank on crashed host ("
        << ref.cluster << "," << ref.index << ")";
  }

  // The survivors can actually run: the stencil executes on this placement
  // with the same plan armed (crashes predate fault_origin, so only the
  // performance effects remain) and reproduces the sequential numerics.
  const apps::StencilConfig cfg{.n = 96, .iterations = 4};
  const PartitionVector partition =
      balanced_partition(net, config, order, cfg.n);
  const apps::DistributedStencilResult run = apps::run_distributed_stencil(
      net, placement, partition, cfg, {}, &plan, SimTime::millis(10));
  EXPECT_EQ(run.grid, apps::run_sequential(cfg)) << "seed " << seed;
}

// ------------------------------------------------------------ data plane

TEST_P(ChaosPipelineTest, StencilNumericsSurvivePerformanceFaults) {
  const std::uint64_t seed = GetParam();
  const Network net = presets::paper_testbed();
  const sim::FaultPlan plan = perf_plan(seed, net);

  const ProcessorConfig config{4, 3};
  const std::vector<ClusterId> order = clusters_by_speed(net);
  const Placement placement = contiguous_placement(net, config, order);
  const apps::StencilConfig cfg{.n = 192, .iterations = 6};
  const PartitionVector partition =
      balanced_partition(net, config, order, cfg.n);

  const apps::DistributedStencilResult benign =
      apps::run_distributed_stencil(net, placement, partition, cfg);
  const apps::DistributedStencilResult faulted =
      apps::run_distributed_stencil(net, placement, partition, cfg, {},
                                    &plan);

  // Performance faults delay the run but never corrupt it.
  EXPECT_EQ(faulted.grid, apps::run_sequential(cfg)) << "seed " << seed;
  EXPECT_GE(faulted.elapsed, benign.elapsed) << "seed " << seed;
}

// ------------------------------------------------------------ adaptation

TEST_P(ChaosPipelineTest, AdaptiveRecoveryWithinBoundOfOracle) {
  const std::uint64_t seed = GetParam();
  const Network net = presets::paper_testbed();
  const apps::StencilConfig cfg{.n = 600, .iterations = 30};
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  const ProcessorConfig config{6, 0};
  const std::vector<ClusterId> order = clusters_by_speed(net);
  const Placement placement = contiguous_placement(net, config, order);
  const PartitionVector initial =
      balanced_partition(net, config, order, cfg.n);

  AdaptiveOptions adaptive;
  adaptive.check_interval = 3;
  adaptive.imbalance_threshold = 1.25;
  adaptive.pdu_bytes = 4 * cfg.n;

  // Baseline elapsed time sets the fault horizon: the slowdowns land in
  // the first quarter of the run so the executor has room to recover.
  ExecutionOptions benign;
  benign.seed = seed;
  const AdaptiveResult baseline = execute_static_chunked(
      net, spec, placement, initial, benign, adaptive);
  ASSERT_GT(baseline.elapsed, SimTime::zero());

  sim::ChaosOptions chaos;
  chaos.crashes = 0;
  chaos.revocations = 0;
  chaos.slowdowns = 2;
  chaos.flaps = 0;
  chaos.degrades = 0;
  chaos.horizon = baseline.elapsed * 0.25;
  chaos.max_slowdown = 3.0;
  chaos.open_ended_slowdowns = true;
  const sim::FaultPlan plan = sim::ChaosRng(seed).make_plan(net, chaos);

  ExecutionOptions faulted = benign;
  faulted.faults = &plan;
  const AdaptiveResult result = execute_adaptive(
      net, spec, placement, initial, faulted, adaptive);

  // The slowdown onsets land inside chunk windows, so at least one
  // repartition must have been fault-forced, and its timestamp must lie
  // within the run.
  EXPECT_GE(result.fault_responses, 1) << "seed " << seed;
  EXPECT_LE(result.first_fault_response, result.elapsed) << "seed " << seed;

  // Effective per-PDU time of each rank once every (open-ended) slowdown
  // is active: nominal flop time x ops per PDU x fault multiplier.
  const double ops =
      static_cast<double>(spec.computation_phases()[0].ops_per_pdu());
  std::vector<double> ms_per_pdu;
  ms_per_pdu.reserve(placement.size());
  for (const ProcessorRef& ref : placement) {
    const double nominal =
        net.cluster(ref.cluster).type().flop_time.as_millis() * ops;
    ms_per_pdu.push_back(nominal *
                         plan.slowdown_at(ref, SimTime::seconds(1000000)));
  }

  const RecoveryReport report =
      evaluate_recovery(result.final_partition, ms_per_pdu);
  EXPECT_LE(report.ratio, kRecoveryBound)
      << "seed " << seed << ": achieved " << report.achieved_ms
      << "ms vs oracle " << report.oracle_ms << "ms (partition "
      << result.final_partition.to_string() << " vs oracle "
      << report.oracle.to_string() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosPipelineTest,
                         ::testing::Range<std::uint64_t>(1, kSeeds + 1));

// ------------------------------------------------- directed protocol tests

TEST(FaultTolerantProtocolTest, MatchesBenignProtocolWithoutFaults) {
  const Network net = presets::paper_testbed();
  const std::vector<ClusterManager> managers = make_managers(net, {});

  sim::Engine benign_engine;
  sim::NetSim benign_sim(benign_engine, net, {}, Rng(1));
  const mmps::ProtocolResult benign =
      mmps::run_availability_protocol(benign_sim, managers);

  sim::Engine ft_engine;
  sim::NetSim ft_sim(ft_engine, net, {}, Rng(1));
  const mmps::ProtocolResult ft =
      mmps::run_fault_tolerant_protocol(ft_sim, managers);

  EXPECT_TRUE(ft.completed);
  EXPECT_TRUE(ft.dead.empty());
  EXPECT_EQ(ft.snapshot.available, benign.snapshot.available);
}

TEST(FaultTolerantProtocolTest, CrashedManagerIsDeclaredDeadAfterRetries) {
  const Network net = presets::paper_testbed();
  sim::FaultPlan plan;
  plan.crashes.push_back({SimTime::zero(), ProcessorRef{1, 0}});

  sim::Engine engine;
  sim::NetSim sim(engine, net, {}, Rng(2));
  sim::FaultInjector injector(sim, plan);
  injector.arm();

  const std::vector<ClusterManager> managers = make_managers(net, {});
  mmps::ProtocolOptions options;
  options.ack_timeout = SimTime::millis(100);
  options.max_attempts = 3;
  const mmps::ProtocolResult result =
      mmps::run_fault_tolerant_protocol(sim, managers, options);

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.dead, std::vector<ClusterId>{1});
  EXPECT_EQ(result.snapshot.available[1], 0);
  EXPECT_EQ(result.snapshot.available[0], managers[0].available(net));
  // Declaring the peer dead costs max_attempts ack timeouts.
  EXPECT_GE(result.elapsed, options.ack_timeout * 3.0);
  EXPECT_LE(result.elapsed, options.budget);
}

TEST(FaultTolerantProtocolTest, SurvivesTransientFlapViaRetry) {
  const Network net = presets::paper_testbed();
  sim::FaultPlan plan;
  // Both segments go dark briefly; the retries ride it out and nobody is
  // misdeclared dead.
  plan.flaps.push_back({SimTime::zero(), SimTime::millis(150), 0});
  plan.flaps.push_back({SimTime::zero(), SimTime::millis(150), 1});

  sim::Engine engine;
  sim::NetSim sim(engine, net, {}, Rng(3));
  sim::FaultInjector injector(sim, plan);
  injector.arm();

  const std::vector<ClusterManager> managers = make_managers(net, {});
  mmps::ProtocolOptions options;
  options.ack_timeout = SimTime::millis(100);
  options.max_attempts = 5;
  const mmps::ProtocolResult result =
      mmps::run_fault_tolerant_protocol(sim, managers, options);

  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.dead.empty());
  EXPECT_EQ(result.snapshot.available[0], managers[0].available(net));
  EXPECT_EQ(result.snapshot.available[1], managers[1].available(net));
  EXPECT_GE(result.elapsed, SimTime::millis(150));
}

TEST(FaultTolerantProtocolTest, TwoAdjacentDeathsInOneTokenRoundBothReported) {
  // Two managers that are consecutive in token order crash before the
  // round starts.  The initiator must ride out max_attempts timeouts for
  // EACH of them back to back -- the second probe starts from a state where
  // a peer was just declared dead -- and the final report must name both,
  // with the survivors' availability intact.  This is the exact shape the
  // fleet's report_dead_peers consumes after a multi-node outage.
  NetworkBuilder b;
  b.add_cluster("a", presets::sparc2(), 2);
  b.add_cluster("b", presets::sparc2(), 2);
  b.add_cluster("c", presets::sparc2(), 2);
  b.add_cluster("d", presets::sparc2(), 2);
  const Network net = b.build();

  sim::FaultPlan plan;
  plan.crashes.push_back({SimTime::zero(), ProcessorRef{1, 0}});
  plan.crashes.push_back({SimTime::zero(), ProcessorRef{2, 0}});

  sim::Engine engine;
  sim::NetSim sim(engine, net, {}, Rng(7));
  sim::FaultInjector injector(sim, plan);
  injector.arm();

  const std::vector<ClusterManager> managers = make_managers(net, {});
  mmps::ProtocolOptions options;
  options.ack_timeout = SimTime::millis(100);
  options.max_attempts = 3;
  const mmps::ProtocolResult result =
      mmps::run_fault_tolerant_protocol(sim, managers, options);

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.dead, (std::vector<ClusterId>{1, 2}));
  EXPECT_EQ(result.snapshot.available[1], 0);
  EXPECT_EQ(result.snapshot.available[2], 0);
  EXPECT_EQ(result.snapshot.available[0], managers[0].available(net));
  EXPECT_EQ(result.snapshot.available[3], managers[3].available(net));
  // Each death costs its own max_attempts ack timeouts; they cannot be
  // amortised into one detection.
  EXPECT_GE(result.elapsed, options.ack_timeout * 6.0);
}

TEST(FaultTolerantProtocolTest, BudgetBoundsARunThatCannotComplete) {
  const Network net = presets::paper_testbed();
  sim::FaultPlan plan;
  // A permanent partition of both segments, and a budget too small even to
  // declare the unreachable peer dead: the run must stop at the budget and
  // report itself incomplete instead of hanging.
  plan.flaps.push_back({SimTime::zero(), SimTime::max(), 0});
  plan.flaps.push_back({SimTime::zero(), SimTime::max(), 1});

  sim::Engine engine;
  sim::NetSim sim(engine, net, {}, Rng(4));
  sim::FaultInjector injector(sim, plan);
  injector.arm();

  const std::vector<ClusterManager> managers = make_managers(net, {});
  mmps::ProtocolOptions options;
  options.ack_timeout = SimTime::millis(100);
  options.max_attempts = 2;
  options.budget = SimTime::millis(150);
  const mmps::ProtocolResult result =
      mmps::run_fault_tolerant_protocol(sim, managers, options);

  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.elapsed, options.budget);
}

// ------------------------------------------------------------- telemetry

TEST(ChaosTraceExportTest, FaultEventsAppearInExportedTrace) {
  // One representative seed end-to-end: a faulted execution's TraceLog,
  // bridged into a registry and exported as Chrome trace JSON, must show
  // the plan's performance faults as instant events alongside the message
  // spans -- the observability contract for debugging chaos runs.
  const Network net = presets::paper_testbed();
  const sim::FaultPlan plan = perf_plan(/*seed=*/3, net);
  ASSERT_FALSE(plan.slowdowns.empty());

  const ProcessorConfig config{4, 3};
  const std::vector<ClusterId> order = clusters_by_speed(net);
  const Placement placement = contiguous_placement(net, config, order);
  const apps::StencilConfig cfg{.n = 192, .iterations = 6};
  const PartitionVector partition =
      balanced_partition(net, config, order, cfg.n);
  const ComputationSpec spec = apps::make_stencil_spec(cfg);

  sim::TraceLog log;
  ExecutionOptions options;
  options.faults = &plan;
  options.tracer = log.tracer();
  (void)execute(net, spec, placement, partition, options);

  obs::TelemetryRegistry registry;
  obs::bridge_trace_log(log, registry);
  const JsonValue parsed =
      JsonValue::parse(obs::chrome_trace_json(registry).dump(1));
  const JsonValue* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<std::string> instant_names;
  std::size_t msg_spans = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "i") instant_names.insert(e.find("name")->as_string());
    if (ph == "X" && e.find("name")->as_string() == "msg") ++msg_spans;
  }
  EXPECT_GT(msg_spans, 0u);
  EXPECT_TRUE(instant_names.count("host-slow") == 1 ||
              instant_names.count("seg-degrade") == 1 ||
              instant_names.count("chan-down") == 1)
      << "no fault instants in the exported trace";
}

}  // namespace
}  // namespace netpart

// Tests for the paper's core contribution: Eq. 3 decomposition, the Eq. 4-6
// estimator, and the partitioning heuristic.
#include <gtest/gtest.h>

#include "apps/gauss.hpp"
#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/decompose.hpp"
#include "core/estimator.hpp"
#include "core/partitioner.hpp"
#include "net/builder.hpp"
#include "net/presets.hpp"
#include "util/error.hpp"

namespace netpart {
namespace {

const Network& testbed() {
  static const Network net = presets::paper_testbed();
  return net;
}

const CostModelDb& testbed_db() {
  static const CalibrationResult cal = [] {
    CalibrationParams params;
    params.topologies = {Topology::OneD, Topology::Broadcast};
    return calibrate(testbed(), params);
  }();
  return cal.db;
}

AvailabilitySnapshot all_idle(const Network& net) {
  return gather_availability(net, make_managers(net, AvailabilityPolicy{}));
}

// -------------------------------------------------------------- Eq. 3

TEST(DecomposeTest, PaperRatios) {
  // Sparc2 is 2x the IPC: with (P1, P2) = (6, 4) and N = 600 the paper
  // gives A1 = 2N/(2 P1 + P2) = 75 and A2 = 38 (rounded).
  const PartitionVector pv = balanced_partition(
      testbed(), {6, 4}, clusters_by_speed(testbed()), 600);
  EXPECT_EQ(pv.at(0), 75);
  EXPECT_EQ(pv.at(5), 75);
  EXPECT_NEAR(static_cast<double>(pv.at(6)), 37.5, 0.5);
  EXPECT_EQ(pv.total(), 600);
}

TEST(DecomposeTest, SumsToNumPdusForAllConfigs) {
  for (int p1 = 0; p1 <= 6; ++p1) {
    for (int p2 = 0; p2 <= 6; ++p2) {
      if (p1 + p2 == 0) continue;
      for (std::int64_t n : {60, 301, 599, 1200}) {
        const PartitionVector pv = balanced_partition(
            testbed(), {p1, p2}, clusters_by_speed(testbed()), n);
        EXPECT_EQ(pv.total(), n);
        EXPECT_NO_THROW(pv.validate(n));
      }
    }
  }
}

TEST(DecomposeTest, FasterProcessorsGetMoreWork) {
  const PartitionVector pv = balanced_partition(
      testbed(), {3, 3}, clusters_by_speed(testbed()), 999);
  for (int sparc = 0; sparc < 3; ++sparc) {
    for (int ipc = 3; ipc < 6; ++ipc) {
      EXPECT_GT(pv.at(sparc), pv.at(ipc));
    }
  }
  // The 2:1 speed ratio shows up as a 2:1 work ratio.
  EXPECT_NEAR(static_cast<double>(pv.at(0)) / static_cast<double>(pv.at(3)),
              2.0, 0.05);
}

TEST(DecomposeTest, EveryRankGetsWorkEvenWhenScarce) {
  // 7 PDUs over 7 ranks with extreme speed skew: nobody may be starved.
  NetworkBuilder b;
  ProcessorType fast = presets::sparc2();
  fast.flop_time = SimTime::micros(0.01);
  b.add_cluster("fast", fast, 1);
  b.add_cluster("slow", presets::sun_ipc(), 6);
  const Network net = b.build();
  const PartitionVector pv =
      balanced_partition(net, {1, 6}, clusters_by_speed(net), 7);
  for (int r = 0; r < 7; ++r) {
    EXPECT_GE(pv.at(r), 1);
  }
  EXPECT_EQ(pv.total(), 7);
}

TEST(DecomposeTest, EqualPartitionSpreadsRemainder) {
  const PartitionVector pv = equal_partition(5, 12);
  EXPECT_EQ(pv.values(), (std::vector<std::int64_t>{3, 3, 2, 2, 2}));
  EXPECT_THROW(equal_partition(5, 4), InvalidArgument);
}

// ----------------------------------------------------------- estimator

TEST(EstimatorTest, TcompMatchesEq4) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), testbed_db(), spec);
  const CycleEstimate e = est.estimate({6, 0});
  // T_comp = S_i * 5N * A_i = 0.0003 ms * 6000 * 200 = 360 ms.
  EXPECT_NEAR(e.t_comp_ms, 360.0, 1.0);
  EXPECT_GT(e.t_comm_ms, 0.0);
  EXPECT_DOUBLE_EQ(e.t_overlap_ms, 0.0);
  EXPECT_DOUBLE_EQ(e.t_c_ms, e.t_comp_ms + e.t_comm_ms);
  EXPECT_DOUBLE_EQ(e.t_elapsed_ms, 10 * e.t_c_ms);
}

TEST(EstimatorTest, OverlapUsesMinRule) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10, .overlap = true});
  CycleEstimator est(testbed(), testbed_db(), spec);
  const CycleEstimate e = est.estimate({6, 0});
  EXPECT_DOUBLE_EQ(e.t_overlap_ms, std::min(e.t_comp_ms, e.t_comm_ms));
  EXPECT_DOUBLE_EQ(e.t_c_ms, e.t_comp_ms + e.t_comm_ms - e.t_overlap_ms);
}

TEST(EstimatorTest, SingleProcessorHasNoCommCost) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 300, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), testbed_db(), spec);
  const CycleEstimate e = est.estimate({1, 0});
  EXPECT_DOUBLE_EQ(e.t_comm_ms, 0.0);
  EXPECT_NEAR(e.t_comp_ms, 0.0003 * 1500 * 300, 0.5);
}

TEST(EstimatorTest, CrossClusterAddsRouterPenalty) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), testbed_db(), spec);
  // The paper's rule: spanning clusters costs max(T_C1(b,p+1), T_C2(b,p+1))
  // + T_router, which exceeds the single-cluster cost at the same per-
  // cluster processor counts.
  const double both = est.estimate({6, 6}).t_comm_ms;
  const double sparc_only = est.estimate({6, 0}).t_comm_ms;
  EXPECT_GT(both, sparc_only);
}

TEST(EstimatorTest, CoercionPenaltyAppearsOnMixedFormats) {
  const Network mixed = presets::coercion_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(mixed, params);
  ASSERT_TRUE(cal.db.has_coerce(0, 1));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10, .overlap = false});
  CycleEstimator est(mixed, cal.db, spec);
  const double bytes = 2400;
  EXPECT_GT(cal.db.coerce_ms(0, 1, bytes), 0.0);
  // The spanning estimate includes coercion: it must exceed the same
  // estimate recomputed with the coercion fit ignored.
  const CycleEstimate spanning = est.estimate({6, 2});
  EXPECT_GT(spanning.t_comm_ms,
            est.estimate({6, 0}).t_comm_ms);
}

TEST(EstimatorTest, IntegerOpKindUsesIntegerRate) {
  // Same shape, integer instruction rate: Sparc2 int_time is half its
  // flop_time, so T_comp halves.
  ComputationPhaseSpec float_phase;
  float_phase.name = "f";
  float_phase.num_pdus = [] { return std::int64_t{600}; };
  float_phase.ops_per_pdu = [] { return 1000.0; };
  float_phase.op_kind = OpKind::FloatingPoint;
  ComputationPhaseSpec int_phase = float_phase;
  int_phase.op_kind = OpKind::Integer;

  const ComputationSpec fspec("float-app", {float_phase}, {}, 5);
  const ComputationSpec ispec("int-app", {int_phase}, {}, 5);
  CycleEstimator fest(testbed(), testbed_db(), fspec);
  CycleEstimator iest(testbed(), testbed_db(), ispec);
  const double f = fest.estimate({4, 0}).t_comp_ms;
  const double i = iest.estimate({4, 0}).t_comp_ms;
  EXPECT_NEAR(i, 0.5 * f, 1e-6);
}

TEST(EstimatorTest, NoCommunicationPhasesMeansNoCommCost) {
  ComputationPhaseSpec phase;
  phase.name = "pure";
  phase.num_pdus = [] { return std::int64_t{100}; };
  phase.ops_per_pdu = [] { return 10.0; };
  const ComputationSpec spec("pure-compute", {phase}, {}, 3);
  CycleEstimator est(testbed(), testbed_db(), spec);
  const CycleEstimate e = est.estimate({6, 6});
  EXPECT_DOUBLE_EQ(e.t_comm_ms, 0.0);
  EXPECT_DOUBLE_EQ(e.t_overlap_ms, 0.0);
  EXPECT_GT(e.t_comp_ms, 0.0);
}

TEST(EstimatorTest, CountsEvaluations) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 300, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), testbed_db(), spec);
  EXPECT_EQ(est.evaluations(), 0u);
  est.estimate({1, 0});
  est.estimate({2, 0});
  EXPECT_EQ(est.evaluations(), 2u);
}

TEST(EstimatorTest, RejectsBadConfigs) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 300, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), testbed_db(), spec);
  EXPECT_THROW(est.estimate({0, 0}), InvalidArgument);
  EXPECT_THROW(est.estimate({7, 0}), InvalidArgument);
  EXPECT_THROW(est.estimate({6}), InvalidArgument);
}

// ---------------------------------------------------------- partitioner

TEST(PartitionerTest, BinaryAndLinearSearchAgreeOnTestbed) {
  const AvailabilitySnapshot snap = all_idle(testbed());
  for (const bool overlap : {false, true}) {
    for (const std::int64_t n : {60, 300, 600, 1200}) {
      const ComputationSpec spec = apps::make_stencil_spec(
          apps::StencilConfig{.n = static_cast<int>(n),
                              .iterations = 10,
                              .overlap = overlap});
      CycleEstimator est(testbed(), testbed_db(), spec);
      PartitionOptions binary;
      PartitionOptions linear;
      linear.search = PartitionOptions::Search::Linear;
      const PartitionResult rb = partition(est, snap, binary);
      const PartitionResult rl = partition(est, snap, linear);
      EXPECT_EQ(rb.config, rl.config)
          << "N=" << n << " overlap=" << overlap;
      EXPECT_LE(rb.evaluations, rl.evaluations);
    }
  }
}

TEST(PartitionerTest, SmallProblemStaysLocal) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 60, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), testbed_db(), spec);
  const PartitionResult r = partition(est, all_idle(testbed()));
  EXPECT_EQ(r.config[1], 0) << "IPCs must not be used for a tiny problem";
  EXPECT_LE(r.config[0], 3);
}

TEST(PartitionerTest, LargeProblemUsesBothClusters) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = true});
  CycleEstimator est(testbed(), testbed_db(), spec);
  const PartitionResult r = partition(est, all_idle(testbed()));
  EXPECT_EQ(r.config[0], 6);
  EXPECT_GT(r.config[1], 0);
}

TEST(PartitionerTest, EvaluationBudgetIsKLogP) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), testbed_db(), spec);
  const PartitionResult r = partition(est, all_idle(testbed()));
  // K = 2 clusters, P = 12: the paper's bound is ~K log2 P ~ 7; the
  // memoised binary search plus the p=0 probes stays within a small
  // constant of it.
  EXPECT_LE(r.evaluations, 14u);
}

TEST(PartitionerTest, RespectsAvailability) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), testbed_db(), spec);
  AvailabilitySnapshot snap;
  snap.available = {2, 1};
  const PartitionResult r = partition(est, snap);
  EXPECT_LE(r.config[0], 2);
  EXPECT_LE(r.config[1], 1);
  AvailabilitySnapshot none;
  none.available = {0, 0};
  EXPECT_THROW(partition(est, none), InvalidArgument);
}

TEST(PartitionerTest, FastestClusterUnavailableFallsThrough) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), testbed_db(), spec);
  AvailabilitySnapshot snap;
  snap.available = {0, 6};  // all Sparc2s busy
  const PartitionResult r = partition(est, snap);
  EXPECT_EQ(r.config[0], 0);
  EXPECT_GT(r.config[1], 0);
}

TEST(PartitionerTest, HeuristicMatchesExhaustiveOnTestbed) {
  const AvailabilitySnapshot snap = all_idle(testbed());
  for (const std::int64_t n : {60, 300, 600, 1200}) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = static_cast<int>(n),
                            .iterations = 10,
                            .overlap = true});
    CycleEstimator est(testbed(), testbed_db(), spec);
    const PartitionResult heur = partition(est, snap);
    const PartitionResult exh = exhaustive_partition(est, snap);
    // On the 2-cluster testbed the locality heuristic should be optimal
    // or within a whisker (the objective can tie).
    EXPECT_LE(heur.estimate.t_c_ms, exh.estimate.t_c_ms * 1.02)
        << "N=" << n;
  }
}

TEST(PartitionerTest, PlacementMatchesConfig) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), testbed_db(), spec);
  const PartitionResult r = partition(est, all_idle(testbed()));
  EXPECT_EQ(static_cast<int>(r.placement.size()), config_total(r.config));
  // Contiguous fastest-first: all Sparc2 ranks precede all IPC ranks.
  bool seen_ipc = false;
  for (const ProcessorRef& ref : r.placement) {
    if (ref.cluster == 1) seen_ipc = true;
    if (seen_ipc) {
      EXPECT_EQ(ref.cluster, 1);
    }
  }
}

TEST(PartitionerTest, BaselineConfigs) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), testbed_db(), spec);
  const AvailabilitySnapshot snap = all_idle(testbed());
  EXPECT_EQ(config_single_fastest_cluster(est, snap),
            (ProcessorConfig{6, 0}));
  EXPECT_EQ(config_all_available(snap), (ProcessorConfig{6, 6}));
}

TEST(PartitionerTest, GaussChoosesFewProcessors) {
  // Broadcast is bandwidth-limited: the partitioner must not flood it.
  const ComputationSpec spec =
      apps::make_gauss_spec(apps::GaussConfig{.n = 128});
  CycleEstimator est(testbed(), testbed_db(), spec);
  const PartitionResult r = partition(est, all_idle(testbed()));
  EXPECT_LE(config_total(r.config), 4);
}

}  // namespace
}  // namespace netpart

// Deep-coverage tests for paths the module suites touch lightly: the
// bandwidth-limited estimation rule, 2-D estimation, spec-file-driven
// pipelines, adaptive execution under datagram loss, and engine corner
// cases.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>

#include "apps/reduce.hpp"
#include "apps/stencil.hpp"
#include "bench/common.hpp"
#include "calib/calibrate.hpp"
#include "core/decompose.hpp"
#include "core/partitioner.hpp"
#include "dp/spec_parser.hpp"
#include "exec/adaptive.hpp"
#include "exec/executor.hpp"
#include "net/builder.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

const Network& testbed() {
  static const Network net = presets::paper_testbed();
  return net;
}

const CostModelDb& full_db() {
  static const CalibrationResult cal =
      calibrate(testbed(), CalibrationParams{});
  return cal.db;
}

AvailabilitySnapshot all_idle() {
  return gather_availability(testbed(),
                             make_managers(testbed(), AvailabilityPolicy{}));
}

TEST(EstimatorCoverage, BroadcastSeesTotalOfferedLoad) {
  // Bandwidth-limited topologies: the p parameter is the *total*
  // processor count, so splitting the same total across clusters cannot
  // make broadcast cheaper the way it can for 1-D.
  const ComputationSpec spec =
      apps::make_reduce_spec(apps::ReduceConfig{.count = 100000,
                                                .iterations = 10});
  // reduce uses Tree; build a broadcast variant inline.
  ComputationPhaseSpec comp = spec.computation_phases().front();
  CommunicationPhaseSpec comm;
  comm.name = "bcast";
  comm.topology = [] { return Topology::Broadcast; };
  comm.bytes_per_message = [](std::int64_t) { return std::int64_t{4096}; };
  const ComputationSpec bcast("bcast-app", {comp}, {comm}, 10);

  CycleEstimator est(testbed(), full_db(), bcast);
  const double six_zero = est.estimate({6, 0}).t_comm_ms;
  const double four_zero = est.estimate({4, 0}).t_comm_ms;
  EXPECT_GT(six_zero, four_zero) << "offered load grows with total p";
}

TEST(EstimatorCoverage, TwoDBytesShrinkWithMoreProcessors) {
  const ComputationSpec spec = apps::make_stencil2d_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(testbed(), full_db(), spec);
  // Per-message bytes shrink with more processors (4*sqrt(A_i)), unlike
  // the constant 4N border of the 1-D code...
  const std::int64_t bytes_p2 =
      spec.dominant_communication().bytes_per_message(1200 * 600);
  const std::int64_t bytes_p6 =
      spec.dominant_communication().bytes_per_message(1200 * 200);
  EXPECT_LT(bytes_p6, bytes_p2);
  EXPECT_LT(bytes_p6, 4 * 1200);
  // ...so at high p the 2-D decomposition moves fewer bytes and its
  // estimated communication cost sits below the 1-D code's.
  const ComputationSpec one_d = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est1(testbed(), full_db(), one_d);
  EXPECT_LT(est.estimate({6, 0}).t_comm_ms,
            est1.estimate({6, 0}).t_comm_ms);
}

TEST(SpecPipelineCoverage, SpecFileDrivesTheFullPipeline) {
  const SpecTemplate tmpl = parse_spec(R"(
computation spec-stencil
param N 600
iterations 10

phase compute grid
  pdus N
  ops 5 * N

phase comm borders
  topology 1-D
  bytes 4 * N
)");
  const ComputationSpec from_spec = tmpl.instantiate();
  const ComputationSpec hand_written = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10, .overlap = false});

  CycleEstimator est_spec(testbed(), full_db(), from_spec);
  CycleEstimator est_hand(testbed(), full_db(), hand_written);
  const AvailabilitySnapshot snap = all_idle();
  const PartitionResult a = partition(est_spec, snap);
  const PartitionResult b = partition(est_hand, snap);
  EXPECT_EQ(a.config, b.config);
  EXPECT_DOUBLE_EQ(a.estimate.t_c_ms, b.estimate.t_c_ms);

  const ExecutionResult run = execute(testbed(), from_spec, a.placement,
                                      a.estimate.partition, {});
  const ExecutionResult ref = execute(testbed(), hand_written, b.placement,
                                      b.estimate.partition, {});
  EXPECT_EQ(run.elapsed, ref.elapsed);
}

TEST(AdaptiveCoverage, SurvivesDatagramLoss) {
  const apps::StencilConfig cfg{.n = 600, .iterations = 20,
                                .overlap = false};
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  const ProcessorConfig config{6, 0};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector initial = balanced_partition(
      testbed(), config, clusters_by_speed(testbed()), cfg.n);
  const LoadSchedule skew =
      LoadSchedule::step(testbed(), 0, 3, SimTime::millis(100), 0.5);
  ExecutionOptions options;
  options.load = &skew;
  options.sim_params.loss_rate = 0.1;
  options.sim_params.rto = SimTime::millis(5);
  const AdaptiveOptions adaptive{.check_interval = 4,
                                 .imbalance_threshold = 1.2,
                                 .pdu_bytes = 4 * cfg.n};
  const AdaptiveResult r = execute_adaptive(testbed(), spec, placement,
                                            initial, options, adaptive);
  EXPECT_GT(r.repartitions, 0);
  EXPECT_EQ(r.final_partition.total(), cfg.n);
}

TEST(ExecutorCoverage, StartupScalesWithProblemSize) {
  const ProcessorConfig config{6, 6};
  const Placement placement = contiguous_placement(testbed(), config);
  const auto startup_for = [&](int n) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 1, .overlap = false});
    const PartitionVector part = balanced_partition(
        testbed(), config, clusters_by_speed(testbed()), n);
    ExecutionOptions options;
    options.pdu_bytes = 4 * n;
    return execute(testbed(), spec, placement, part, options)
        .startup.as_millis();
  };
  const double s300 = startup_for(300);
  const double s1200 = startup_for(1200);
  // 16x the bytes (N rows of 4N bytes); serialization is byte-dominated.
  EXPECT_GT(s1200, 8.0 * s300);
}

TEST(PartitionerCoverage, SingletonClusterHandled) {
  // A one-processor cluster cannot be calibrated for intra-cluster
  // communication, but it can still host a single-task computation and
  // the partitioner must cope with its missing fit when it stays unused.
  NetworkBuilder b;
  b.add_cluster("fastpair", presets::sparc2(), 4);
  b.add_cluster("solo", presets::rs6000(), 1);
  const Network net = b.build();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  EXPECT_FALSE(cal.db.has_comm(1, Topology::OneD));

  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 60, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  // The solo rs6000 is fastest, so it is considered first; using it alone
  // needs no comm fit at all (p = 1).
  const PartitionResult r = partition(est, snap);
  EXPECT_GE(config_total(r.config), 1);
}

TEST(SpeedupGateCoverage, SingleCoreHostsSkipInsteadOfFailing) {
  // The parallel-speedup bench gate cannot measure a speedup where the
  // hardware offers one core; it must report the explicit escape hatch,
  // never a pass or a fail, regardless of the measured number.
  using bench::SpeedupGate;
  EXPECT_EQ(bench::parallel_speedup_gate(1, false, 4, 3.9),
            SpeedupGate::SkippedSingleCore);
  EXPECT_EQ(bench::parallel_speedup_gate(1, false, 4, 0.1),
            SpeedupGate::SkippedSingleCore);
  EXPECT_EQ(bench::parallel_speedup_gate(0, false, 4, 4.0),
            SpeedupGate::SkippedSingleCore);
  // Single-core wins over smoke: the skip reason names the real blocker.
  EXPECT_EQ(bench::parallel_speedup_gate(1, true, 4, 4.0),
            SpeedupGate::SkippedSingleCore);
  EXPECT_STREQ(bench::to_string(SpeedupGate::SkippedSingleCore),
               "skipped_single_core");
}

TEST(SpeedupGateCoverage, SmokeRunsSkipAndFullRunsGateAtEightTenthsPerThread) {
  using bench::SpeedupGate;
  EXPECT_EQ(bench::parallel_speedup_gate(8, true, 4, 0.0),
            SpeedupGate::SkippedSmoke);
  // Full run, 4 threads on 8 cores: the bar is 0.8 * 4.
  EXPECT_EQ(bench::parallel_speedup_gate(8, false, 4, 3.3),
            SpeedupGate::Pass);
  EXPECT_EQ(bench::parallel_speedup_gate(8, false, 4, 3.2),
            SpeedupGate::Pass);  // boundary is inclusive
  EXPECT_EQ(bench::parallel_speedup_gate(8, false, 4, 3.1),
            SpeedupGate::Fail);
  // Oversubscribed: more threads than cores gates on the cores actually
  // available, not the thread count.
  EXPECT_EQ(bench::parallel_speedup_gate(2, false, 8, 1.7),
            SpeedupGate::Pass);
  EXPECT_EQ(bench::parallel_speedup_gate(2, false, 8, 1.5),
            SpeedupGate::Fail);
  EXPECT_STREQ(bench::to_string(SpeedupGate::Pass), "ok");
  EXPECT_STREQ(bench::to_string(SpeedupGate::Fail), "fail");
  EXPECT_STREQ(bench::to_string(SpeedupGate::SkippedSmoke),
               "skipped_smoke");
}

/// RAII guard so env-var tests cannot leak state into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(SpeedupGateCoverage, EvaluationUsesOneCodePathForSkipAndGate) {
  // evaluate_parallel_speedup is the single entry the hotpath bench uses:
  // the verdict, the inputs it was derived from, and the console/JSON
  // spelling all come from one evaluation, so a skip can never be
  // mis-reported as a pass (or vice versa) by duplicated logic.
  using bench::SpeedupGate;
  ScopedEnv env("NETPART_HW_CONCURRENCY", "8");
  const bench::SpeedupEvaluation full =
      bench::evaluate_parallel_speedup(/*smoke=*/false, /*threads=*/4, 3.3);
  EXPECT_EQ(full.gate, SpeedupGate::Pass);
  EXPECT_EQ(full.hardware_concurrency, 8u);
  EXPECT_EQ(full.effective_threads, 4);
  EXPECT_DOUBLE_EQ(full.required, 0.8 * 4);
  EXPECT_TRUE(full.ok);

  const bench::SpeedupEvaluation fail =
      bench::evaluate_parallel_speedup(false, 4, 3.1);
  EXPECT_EQ(fail.gate, SpeedupGate::Fail);
  EXPECT_FALSE(fail.ok);

  // Smoke skips, and a skip is not a failure.
  const bench::SpeedupEvaluation smoke =
      bench::evaluate_parallel_speedup(true, 4, 0.0);
  EXPECT_EQ(smoke.gate, SpeedupGate::SkippedSmoke);
  EXPECT_TRUE(smoke.ok);
}

TEST(SpeedupGateCoverage, SingleCoreEnvOverrideForcesTheSkipEscapeHatch) {
  // NETPART_HW_CONCURRENCY pins the detected core count so the
  // single-core escape hatch is testable on any CI host.
  using bench::SpeedupGate;
  ScopedEnv env("NETPART_HW_CONCURRENCY", "1");
  EXPECT_EQ(bench::detected_hardware_concurrency(), 1u);
  const bench::SpeedupEvaluation eval =
      bench::evaluate_parallel_speedup(/*smoke=*/false, /*threads=*/4, 0.1);
  EXPECT_EQ(eval.gate, SpeedupGate::SkippedSingleCore);
  EXPECT_TRUE(eval.ok) << "skipped_single_core must not fail the bench";
  EXPECT_EQ(eval.hardware_concurrency, 1u);
  EXPECT_EQ(eval.effective_threads, 1);
  // Single-core outranks smoke: the skip reason names the real blocker.
  EXPECT_EQ(bench::evaluate_parallel_speedup(true, 4, 4.0).gate,
            SpeedupGate::SkippedSingleCore);
}

TEST(SpeedupGateCoverage, MalformedConcurrencyOverrideFallsBackToHardware) {
  const unsigned real = std::thread::hardware_concurrency();
  for (const char* bad : {"", "abc", "4x", "-2", "0", "1000000"}) {
    ScopedEnv env("NETPART_HW_CONCURRENCY", bad);
    EXPECT_EQ(bench::detected_hardware_concurrency(), real)
        << "override '" << bad << "' should be rejected";
  }
}

TEST(GateSetCoverage, PassReflectsOnlyGatesThatRan) {
  // The bench's pass verdict is the AND over gates that ran: a skipped
  // gate records its reason but must not drive pass() either way.
  bench::GateSet gates;
  EXPECT_TRUE(gates.pass()) << "no gates yet: vacuously passing";
  gates.require("bitwise_match", true);
  gates.skip("batched_under_40ns", "skipped_single_core");
  EXPECT_TRUE(gates.pass())
      << "a skipped wall-clock gate must not fail the run";
  EXPECT_TRUE(gates.failed().empty());

  gates.require("zero_alloc_per_eval", false);
  EXPECT_FALSE(gates.pass());
  ASSERT_EQ(gates.failed().size(), 1u);
  EXPECT_EQ(gates.failed().front(), "zero_alloc_per_eval");

  // A later success never un-fails the set.
  gates.require("fast_speedup_3x", true);
  EXPECT_FALSE(gates.pass());
}

TEST(GateSetCoverage, SkippedJsonRecordsNameAndReasonInOrder) {
  bench::GateSet gates;
  gates.skip("fast_speedup_3x", "skipped_smoke");
  gates.skip("parallel_speedup", "skipped_single_core");
  const JsonValue skipped = gates.skipped_json();
  ASSERT_EQ(skipped.size(), 2u);
  EXPECT_EQ(skipped.at(0).as_string(), "fast_speedup_3x: skipped_smoke");
  EXPECT_EQ(skipped.at(1).as_string(),
            "parallel_speedup: skipped_single_core");
  // All-skipped is a passing run; the artifact says what was not checked.
  EXPECT_TRUE(gates.pass());
}

}  // namespace
}  // namespace netpart

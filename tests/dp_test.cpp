// Tests for the data parallel model: phase annotations, dominant-phase
// selection, and the partition vector.
#include <gtest/gtest.h>

#include "dp/partition_vector.hpp"
#include "dp/phases.hpp"
#include "util/error.hpp"

namespace netpart {
namespace {

ComputationPhaseSpec comp_phase(std::string name, std::int64_t pdus,
                                double ops) {
  ComputationPhaseSpec p;
  p.name = std::move(name);
  p.num_pdus = [pdus] { return pdus; };
  p.ops_per_pdu = [ops] { return ops; };
  return p;
}

CommunicationPhaseSpec comm_phase(std::string name, Topology t,
                                  std::int64_t bytes,
                                  std::string overlap = "") {
  CommunicationPhaseSpec p;
  p.name = std::move(name);
  p.topology = [t] { return t; };
  p.bytes_per_message = [bytes](std::int64_t) { return bytes; };
  p.overlap_with = std::move(overlap);
  return p;
}

TEST(ComputationSpecTest, DominantPhasesByComplexity) {
  const ComputationSpec spec(
      "multi",
      {comp_phase("small", 100, 10.0), comp_phase("big", 100, 500.0)},
      {comm_phase("tiny", Topology::Ring, 8),
       comm_phase("bulk", Topology::OneD, 4096)},
      5);
  EXPECT_EQ(spec.dominant_computation().name, "big");
  EXPECT_EQ(spec.dominant_communication().name, "bulk");
  EXPECT_EQ(spec.num_pdus(), 100);
  EXPECT_FALSE(spec.dominant_phases_overlap());
}

TEST(ComputationSpecTest, OverlapOnlyWhenDominantPairMatches) {
  // The bulk communication overlaps the *small* compute phase; the
  // dominant pair does not overlap, so T_overlap must not apply.
  const ComputationSpec spec(
      "partial-overlap",
      {comp_phase("small", 100, 10.0), comp_phase("big", 100, 500.0)},
      {comm_phase("bulk", Topology::OneD, 4096, "small")}, 5);
  EXPECT_FALSE(spec.dominant_phases_overlap());

  const ComputationSpec overlapped(
      "full-overlap", {comp_phase("big", 100, 500.0)},
      {comm_phase("bulk", Topology::OneD, 4096, "big")}, 5);
  EXPECT_TRUE(overlapped.dominant_phases_overlap());
}

TEST(ComputationSpecTest, ValidatesStructure) {
  // No computation phase.
  EXPECT_THROW(ComputationSpec("x", {}, {}, 1), InvalidArgument);
  // Duplicate names.
  EXPECT_THROW(
      ComputationSpec("x",
                      {comp_phase("a", 10, 1.0), comp_phase("a", 10, 1.0)},
                      {}, 1),
      InvalidArgument);
  // Overlap referencing an unknown phase.
  EXPECT_THROW(
      ComputationSpec("x", {comp_phase("a", 10, 1.0)},
                      {comm_phase("c", Topology::OneD, 8, "ghost")}, 1),
      InvalidArgument);
  // Disagreeing PDU domains.
  EXPECT_THROW(
      ComputationSpec("x",
                      {comp_phase("a", 10, 1.0), comp_phase("b", 20, 1.0)},
                      {}, 1),
      InvalidArgument);
  // Bad iteration count.
  EXPECT_THROW(ComputationSpec("x", {comp_phase("a", 10, 1.0)}, {}, 0),
               InvalidArgument);
  // Missing callbacks.
  ComputationPhaseSpec broken;
  broken.name = "broken";
  EXPECT_THROW(ComputationSpec("x", {broken}, {}, 1), InvalidArgument);
}

TEST(ComputationSpecTest, CallbacksMayDependOnAssignment) {
  CommunicationPhaseSpec p = comm_phase("col", Topology::OneD, 0);
  p.bytes_per_message = [](std::int64_t a_i) { return 8 * a_i; };
  const ComputationSpec spec("x", {comp_phase("a", 100, 1.0)}, {p}, 1);
  EXPECT_EQ(spec.dominant_communication().bytes_per_message(25), 200);
}

TEST(PartitionVectorTest, TotalsAndRanges) {
  const PartitionVector pv({5, 3, 2});
  EXPECT_EQ(pv.num_ranks(), 3);
  EXPECT_EQ(pv.total(), 10);
  EXPECT_EQ(pv.at(1), 3);
  const auto ranges = pv.block_ranges();
  EXPECT_EQ(ranges[0], (std::pair<std::int64_t, std::int64_t>{0, 5}));
  EXPECT_EQ(ranges[1], (std::pair<std::int64_t, std::int64_t>{5, 8}));
  EXPECT_EQ(ranges[2], (std::pair<std::int64_t, std::int64_t>{8, 10}));
  EXPECT_EQ(pv.to_string(), "5 3 2");
}

TEST(PartitionVectorTest, Validation) {
  const PartitionVector pv({5, 3, 2});
  EXPECT_NO_THROW(pv.validate(10));
  EXPECT_THROW(pv.validate(11), InvalidArgument);
  const PartitionVector with_zero({5, 0, 5});
  EXPECT_THROW(with_zero.validate(10), InvalidArgument);
  EXPECT_THROW(PartitionVector({-1, 2}), InvalidArgument);
  EXPECT_THROW(PartitionVector({}), InvalidArgument);
  EXPECT_THROW(pv.at(3), InvalidArgument);
}

}  // namespace
}  // namespace netpart

// Tests for the SPMD executor and step scheduling.
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "core/decompose.hpp"
#include "exec/executor.hpp"
#include "exec/schedule.hpp"
#include "net/presets.hpp"
#include "util/error.hpp"

namespace netpart {
namespace {

const Network& testbed() {
  static const Network net = presets::paper_testbed();
  return net;
}

ComputationSpec stencil(int n, bool overlap) {
  return apps::make_stencil_spec(
      apps::StencilConfig{.n = n, .iterations = 10, .overlap = overlap});
}

TEST(ScheduleTest, Sten1OrderIsSendRecvCompute) {
  const ComputationSpec spec = stencil(60, false);
  const auto steps = default_schedule(spec);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].kind, StepKind::Send);
  EXPECT_EQ(steps[1].kind, StepKind::Receive);
  EXPECT_EQ(steps[2].kind, StepKind::Compute);
  EXPECT_EQ(to_string(steps, spec),
            "send(borders) recv(borders) compute(grid)");
}

TEST(ScheduleTest, Sten2OrderIsSendComputeRecv) {
  const ComputationSpec spec = stencil(60, true);
  const auto steps = default_schedule(spec);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].kind, StepKind::Send);
  EXPECT_EQ(steps[1].kind, StepKind::Compute);
  EXPECT_EQ(steps[2].kind, StepKind::Receive);
}

TEST(ScheduleTest, MultiPhaseOrdering) {
  // Two computation phases, three communication phases with different
  // overlap targets: sends first, non-overlapped receives before any
  // compute, each overlapped receive after its compute phase.
  ComputationPhaseSpec prep;
  prep.name = "prep";
  prep.num_pdus = [] { return std::int64_t{100}; };
  prep.ops_per_pdu = [] { return 1.0; };
  ComputationPhaseSpec main_phase = prep;
  main_phase.name = "main";
  main_phase.ops_per_pdu = [] { return 50.0; };

  const auto comm = [](std::string name, std::string overlap) {
    CommunicationPhaseSpec p;
    p.name = std::move(name);
    p.topology = [] { return Topology::OneD; };
    p.bytes_per_message = [](std::int64_t) { return std::int64_t{64}; };
    p.overlap_with = std::move(overlap);
    return p;
  };
  const ComputationSpec spec(
      "multi", {prep, main_phase},
      {comm("sync", ""), comm("early", "prep"), comm("late", "main")}, 2);

  const auto steps = default_schedule(spec);
  EXPECT_EQ(to_string(steps, spec),
            "send(sync) send(early) send(late) recv(sync) compute(prep) "
            "recv(early) compute(main) recv(late)");

  // And it executes: 1-D chain of 4 -> 6 directed messages per comm phase
  // per iteration, 3 phases, 2 iterations.
  const ProcessorConfig config{4, 0};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part = balanced_partition(
      testbed(), config, clusters_by_speed(testbed()), 100);
  const ExecutionResult r = execute(testbed(), spec, placement, part, {});
  EXPECT_EQ(r.messages_delivered, 2u * 3u * 6u);
}

TEST(ExecutorTest, SingleRankIsPureCompute) {
  const ComputationSpec spec = stencil(300, false);
  const Placement placement{ProcessorRef{0, 0}};
  const PartitionVector part({300});
  const ExecutionResult r = execute(testbed(), spec, placement, part, {});
  // 10 iterations x 0.0003 ms x 5*300 x 300 rows = 1350 ms of compute plus
  // nothing else (no neighbours).
  EXPECT_NEAR(r.elapsed.as_millis(), 1350.0, 5.0);
  EXPECT_EQ(r.messages_delivered, 0u);
}

TEST(ExecutorTest, DeterministicWithoutJitter) {
  const ComputationSpec spec = stencil(300, true);
  const ProcessorConfig config{4, 2};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part =
      balanced_partition(testbed(), config, clusters_by_speed(testbed()),
                         300);
  const ExecutionResult a = execute(testbed(), spec, placement, part, {});
  const ExecutionResult b = execute(testbed(), spec, placement, part, {});
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.rank_finish, b.rank_finish);
}

TEST(ExecutorTest, JitterPerturbsButSeedsReproduce) {
  const ComputationSpec spec = stencil(300, false);
  const ProcessorConfig config{4, 0};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part =
      balanced_partition(testbed(), config, clusters_by_speed(testbed()),
                         300);
  ExecutionOptions o1;
  o1.compute_jitter = 0.05;
  o1.seed = 1;
  ExecutionOptions o2 = o1;
  o2.seed = 2;
  const double t1 = execute(testbed(), spec, placement, part, o1)
                        .elapsed.as_millis();
  const double t1_again = execute(testbed(), spec, placement, part, o1)
                              .elapsed.as_millis();
  const double t2 = execute(testbed(), spec, placement, part, o2)
                        .elapsed.as_millis();
  EXPECT_EQ(t1, t1_again);
  EXPECT_NE(t1, t2);
}

TEST(ExecutorTest, BalancedPartitionBalancesBusyTime) {
  const ComputationSpec spec = stencil(1200, false);
  const ProcessorConfig config{6, 6};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part = balanced_partition(
      testbed(), config, clusters_by_speed(testbed()), 1200);
  const ExecutionResult r = execute(testbed(), spec, placement, part, {});
  SimTime busy_min = SimTime::max();
  SimTime busy_max = SimTime::zero();
  for (const SimTime t : r.rank_busy) {
    busy_min = std::min(busy_min, t);
    busy_max = std::max(busy_max, t);
  }
  // Within ~12%: integer rounding of A_i plus asymmetric border traffic.
  EXPECT_LT(busy_max.as_millis(), 1.12 * busy_min.as_millis());
}

TEST(ExecutorTest, EqualPartitionImbalancesBusyTime) {
  const ComputationSpec spec = stencil(1200, false);
  const ProcessorConfig config{6, 6};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector equal = equal_partition(12, 1200);
  const ExecutionResult r = execute(testbed(), spec, placement, equal, {});
  // IPC ranks (6..11) run their equal share at half speed: ~2x busy.
  EXPECT_GT(r.rank_busy[6].as_millis(), 1.7 * r.rank_busy[0].as_millis());
}

TEST(ExecutorTest, MessageCountMatchesTopology) {
  const ComputationSpec spec = stencil(300, false);
  const ProcessorConfig config{5, 0};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part =
      balanced_partition(testbed(), config, clusters_by_speed(testbed()),
                         300);
  const ExecutionResult r = execute(testbed(), spec, placement, part, {});
  // 1-D chain of 5: 2(p-1) = 8 messages per iteration, 10 iterations.
  EXPECT_EQ(r.messages_delivered, 80u);
}

TEST(ExecutorTest, OverlapBeatsNoOverlap) {
  const ProcessorConfig config{6, 0};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part =
      balanced_partition(testbed(), config, clusters_by_speed(testbed()),
                         600);
  const double t1 = execute(testbed(), stencil(600, false), placement, part,
                            {})
                        .elapsed.as_millis();
  const double t2 = execute(testbed(), stencil(600, true), placement, part,
                            {})
                        .elapsed.as_millis();
  EXPECT_LT(t2, t1);
}

TEST(ExecutorTest, SurvivesHeavyLossAndStillCompletes) {
  const ComputationSpec spec = stencil(300, false);
  const ProcessorConfig config{4, 2};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part =
      balanced_partition(testbed(), config, clusters_by_speed(testbed()),
                         300);
  ExecutionOptions clean;
  ExecutionOptions lossy;
  lossy.sim_params.loss_rate = 0.25;
  lossy.sim_params.rto = SimTime::millis(10);
  const ExecutionResult rc = execute(testbed(), spec, placement, part,
                                     clean);
  const ExecutionResult rl = execute(testbed(), spec, placement, part,
                                     lossy);
  EXPECT_EQ(rl.messages_delivered, rc.messages_delivered);
  EXPECT_GT(rl.retransmissions, 0u);
  EXPECT_GT(rl.elapsed, rc.elapsed);
}

TEST(ExecutorTest, ComputeBreakdownAccountsForEq4) {
  const ComputationSpec spec = stencil(1200, false);
  const ProcessorConfig config{6, 0};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part = balanced_partition(
      testbed(), config, clusters_by_speed(testbed()), 1200);
  const ExecutionResult r = execute(testbed(), spec, placement, part, {});
  ASSERT_EQ(r.rank_compute.size(), 6u);
  for (const SimTime t : r.rank_compute) {
    // 10 iterations x 0.0003 ms x 6000 x 200 rows = 3600 ms.
    EXPECT_NEAR(t.as_millis(), 3600.0, 5.0);
    // Compute is part of, and dominated by, total busy time.
    EXPECT_LE(t, r.elapsed);
  }
  // Busy = compute + messaging overhead; the difference is small but
  // positive (send initiations + receive processing).
  for (std::size_t i = 0; i < r.rank_busy.size(); ++i) {
    EXPECT_GT(r.rank_busy[i], r.rank_compute[i]);
  }
  // Communication exposure = elapsed - compute for the slowest rank.
  EXPECT_GT(r.elapsed, r.rank_compute[0]);
}

TEST(ExecutorTest, ValidatesPartitionAlignment) {
  const ComputationSpec spec = stencil(300, false);
  const Placement placement = contiguous_placement(testbed(), {2, 0});
  EXPECT_THROW(
      execute(testbed(), spec, placement, PartitionVector({300}), {}),
      InvalidArgument);  // 1 entry for 2 ranks
  EXPECT_THROW(
      execute(testbed(), spec, placement, PartitionVector({100, 100}), {}),
      InvalidArgument);  // does not cover the domain
}

TEST(ExecutorTest, AverageElapsedAveragesSeeds) {
  const ComputationSpec spec = stencil(300, false);
  const Placement placement = contiguous_placement(testbed(), {3, 0});
  const PartitionVector part = balanced_partition(
      testbed(), {3, 0}, clusters_by_speed(testbed()), 300);
  ExecutionOptions options;
  options.compute_jitter = 0.05;
  const double avg =
      average_elapsed_ms(testbed(), spec, placement, part, options, 5);
  EXPECT_GT(avg, 0.0);
  EXPECT_THROW(
      average_elapsed_ms(testbed(), spec, placement, part, options, 0),
      InvalidArgument);
}

}  // namespace
}  // namespace netpart

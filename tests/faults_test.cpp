// Unit tests for the fault-injection subsystem: FaultPlan semantics,
// ChaosRng reproducibility, FaultInjector behaviour on the simulator, and
// the availability-churn plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "net/availability.hpp"
#include "net/presets.hpp"
#include "sim/faults.hpp"
#include "sim/netsim.hpp"
#include "sim/trace.hpp"
#include "topo/placement.hpp"
#include "util/error.hpp"

namespace netpart::sim {
namespace {

Network testbed() { return presets::paper_testbed(); }

// ---------------------------------------------------------- plan queries

TEST(FaultPlanTest, CrashedByIsPermanentFromCrashTime) {
  FaultPlan plan;
  plan.crashes.push_back({SimTime::millis(5), ProcessorRef{1, 2}});
  EXPECT_FALSE(plan.crashed_by(ProcessorRef{1, 2}, SimTime::millis(4)));
  EXPECT_TRUE(plan.crashed_by(ProcessorRef{1, 2}, SimTime::millis(5)));
  EXPECT_TRUE(plan.crashed_by(ProcessorRef{1, 2}, SimTime::seconds(100)));
  EXPECT_FALSE(plan.crashed_by(ProcessorRef{1, 3}, SimTime::seconds(100)));
}

TEST(FaultPlanTest, SlowdownWindowsAreHalfOpenAndCompose) {
  FaultPlan plan;
  plan.slowdowns.push_back(
      {SimTime::millis(10), SimTime::millis(20), ProcessorRef{0, 0}, 2.0});
  plan.slowdowns.push_back(
      {SimTime::millis(15), SimTime::millis(30), ProcessorRef{0, 0}, 3.0});
  EXPECT_DOUBLE_EQ(plan.slowdown_at(ProcessorRef{0, 0}, SimTime::millis(9)),
                   1.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_at(ProcessorRef{0, 0}, SimTime::millis(10)),
                   2.0);
  // Overlap multiplies; the first window's end is exclusive.
  EXPECT_DOUBLE_EQ(plan.slowdown_at(ProcessorRef{0, 0}, SimTime::millis(15)),
                   6.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_at(ProcessorRef{0, 0}, SimTime::millis(20)),
                   3.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_at(ProcessorRef{0, 0}, SimTime::millis(30)),
                   1.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_at(ProcessorRef{0, 1}, SimTime::millis(15)),
                   1.0);
}

TEST(FaultPlanTest, ChannelAndDegradeWindows) {
  FaultPlan plan;
  plan.flaps.push_back({SimTime::millis(1), SimTime::millis(2), 0});
  plan.degrades.push_back({SimTime::millis(1), SimTime::millis(3), 1, 4.0});
  EXPECT_TRUE(plan.channel_down_at(0, SimTime::millis(1)));
  EXPECT_FALSE(plan.channel_down_at(0, SimTime::millis(2)));
  EXPECT_FALSE(plan.channel_down_at(1, SimTime::millis(1)));
  EXPECT_DOUBLE_EQ(plan.degradation_at(1, SimTime::millis(2)), 4.0);
  EXPECT_DOUBLE_EQ(plan.degradation_at(1, SimTime::millis(3)), 1.0);
  EXPECT_DOUBLE_EQ(plan.degradation_at(0, SimTime::millis(2)), 1.0);
}

TEST(FaultPlanTest, DisturbsDetectsBoundariesInWindow) {
  FaultPlan plan;
  plan.crashes.push_back({SimTime::millis(50), ProcessorRef{0, 1}});
  plan.slowdowns.push_back(
      {SimTime::millis(100), SimTime::max(), ProcessorRef{1, 0}, 2.0});
  EXPECT_TRUE(plan.disturbs(SimTime::millis(40), SimTime::millis(60)));
  EXPECT_TRUE(plan.disturbs(SimTime::millis(40), SimTime::millis(50)));
  EXPECT_FALSE(plan.disturbs(SimTime::millis(50), SimTime::millis(90)));
  EXPECT_TRUE(plan.disturbs(SimTime::millis(90), SimTime::millis(100)));
  // The open slowdown end (SimTime::max) is never a boundary.
  EXPECT_FALSE(plan.disturbs(SimTime::millis(101), SimTime::max()));
}

TEST(FaultPlanTest, ChurnEventsIncludeCrashesAsRevocations) {
  FaultPlan plan;
  plan.crashes.push_back({SimTime::millis(5), ProcessorRef{1, 2}});
  plan.churn.push_back(
      {SimTime::millis(1), ProcessorRef{0, 3}, ChurnEvent::Kind::Revoke});
  const std::vector<ChurnEvent> events = plan.churn_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].ref, (ProcessorRef{1, 2}));
  EXPECT_EQ(events[1].kind, ChurnEvent::Kind::Revoke);
  EXPECT_EQ(events[1].at, SimTime::millis(5));
}

TEST(FaultPlanTest, ValidateRejectsBadPlans) {
  const Network net = testbed();
  {
    FaultPlan plan;
    plan.crashes.push_back({SimTime::zero(), ProcessorRef{9, 0}});
    EXPECT_THROW(plan.validate(net), InvalidArgument);
  }
  {
    FaultPlan plan;
    plan.slowdowns.push_back(
        {SimTime::millis(5), SimTime::millis(2), ProcessorRef{0, 0}, 2.0});
    EXPECT_THROW(plan.validate(net), InvalidArgument);
  }
  {
    FaultPlan plan;
    plan.slowdowns.push_back(
        {SimTime::millis(1), SimTime::millis(2), ProcessorRef{0, 0}, 0.5});
    EXPECT_THROW(plan.validate(net), InvalidArgument);
  }
  {
    FaultPlan plan;
    plan.flaps.push_back({SimTime::millis(1), SimTime::millis(2), 7});
    EXPECT_THROW(plan.validate(net), InvalidArgument);
  }
}

TEST(FaultPlanTest, DescribeIsSortedAndOrderIndependent) {
  FaultPlan a;
  a.crashes.push_back({SimTime::millis(7), ProcessorRef{1, 1}});
  a.flaps.push_back({SimTime::millis(2), SimTime::millis(4), 0});

  FaultPlan b;
  b.flaps.push_back({SimTime::millis(2), SimTime::millis(4), 0});
  b.crashes.push_back({SimTime::millis(7), ProcessorRef{1, 1}});

  EXPECT_EQ(a.describe(), b.describe());
  // Sorted by time: the flap line comes first.
  EXPECT_LT(a.describe().find("flap"), a.describe().find("crash"));
}

// -------------------------------------------------------------- ChaosRng

TEST(ChaosRngTest, SameSeedSamePlan) {
  const Network net = testbed();
  ChaosOptions options;
  options.control_horizon = SimTime::millis(50);
  const FaultPlan p1 = ChaosRng(42).make_plan(net, options);
  const FaultPlan p2 = ChaosRng(42).make_plan(net, options);
  EXPECT_EQ(p1.describe(), p2.describe());
  EXPECT_FALSE(p1.empty());
  EXPECT_NE(p1.describe(), ChaosRng(43).make_plan(net, options).describe());
}

TEST(ChaosRngTest, ConsecutivePlansDiffer) {
  const Network net = testbed();
  ChaosRng rng(7);
  EXPECT_NE(rng.make_plan(net).describe(), rng.make_plan(net).describe());
}

TEST(ChaosRngTest, NeverTouchesSparedHost) {
  const Network net = testbed();
  ChaosOptions options;
  options.crashes = 3;
  options.revocations = 3;
  options.control_horizon = SimTime::millis(100);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const FaultPlan plan = ChaosRng(seed).make_plan(net, options);
    for (const auto& c : plan.crashes) {
      EXPECT_NE(c.host, options.spared) << "seed " << seed;
    }
    for (const auto& e : plan.churn) {
      EXPECT_NE(e.ref, options.spared) << "seed " << seed;
    }
    plan.validate(net);
  }
}

TEST(ChaosRngTest, LeavesSurvivorsForThePartitioner) {
  // Even when asked for more fail-stop faults than hosts exist, at least
  // one non-spared processor must stay untouched.
  const Network net = testbed();
  ChaosOptions options;
  options.crashes = 100;
  options.revocations = 100;
  const FaultPlan plan = ChaosRng(3).make_plan(net, options);
  const int total_hosts = 12;
  EXPECT_LT(static_cast<int>(plan.crashes.size() + plan.churn.size()),
            total_hosts - 1);
}

// --------------------------------------------------------- FaultInjector

TEST(FaultInjectorTest, CrashedHostDropsTraffic) {
  const Network net = testbed();
  Engine engine;
  NetSim sim(engine, net, NetSimParams{}, Rng(1));
  TraceLog log;
  sim.set_tracer(log.tracer());

  FaultPlan plan;
  plan.crashes.push_back({SimTime::millis(200), ProcessorRef{1, 1}});
  FaultInjector injector(sim, plan);
  injector.arm();

  int delivered_to_dead = 0;
  int delivered_before = 0;
  // Sent at t=0, delivered well before the 200ms crash: arrives.
  sim.send(ProcessorRef{1, 0}, ProcessorRef{1, 1}, 16,
           [&] { ++delivered_before; });
  engine.run();
  EXPECT_EQ(delivered_before, 1);
  EXPECT_EQ(engine.now() >= SimTime::millis(200), true);

  // After the crash: traffic to and from the dead host vanishes.
  sim.send(ProcessorRef{1, 0}, ProcessorRef{1, 1}, 16,
           [&] { ++delivered_to_dead; });
  sim.send(ProcessorRef{1, 1}, ProcessorRef{1, 0}, 16,
           [&] { ++delivered_to_dead; });
  engine.run();
  EXPECT_EQ(delivered_to_dead, 0);
  EXPECT_EQ(sim.messages_dropped(), 2u);
  EXPECT_EQ(log.count(TraceEvent::Kind::HostCrashed), 1u);
  EXPECT_EQ(log.count(TraceEvent::Kind::MessageDropped), 2u);

  // The crash event carries the host and the exact time.
  for (const TraceEvent& e : log.events()) {
    if (e.kind == TraceEvent::Kind::HostCrashed) {
      EXPECT_EQ(e.src, (ProcessorRef{1, 1}));
      EXPECT_EQ(e.at, SimTime::millis(200));
    }
  }
}

TEST(FaultInjectorTest, SlowdownStretchesHostReservations) {
  Host host;
  EXPECT_EQ(host.reserve(SimTime::zero(), SimTime::millis(10)),
            SimTime::millis(10));
  host.set_slowdown(2.0);
  EXPECT_EQ(host.reserve(SimTime::millis(10), SimTime::millis(10)),
            SimTime::millis(30));
  host.set_slowdown(1.0);
  EXPECT_EQ(host.reserve(SimTime::millis(30), SimTime::millis(10)),
            SimTime::millis(40));
  EXPECT_THROW(host.set_slowdown(0.9), InvalidArgument);
}

TEST(FaultInjectorTest, DegradationStretchesChannelOccupancy) {
  Channel ch(10e6, SimTime::micros(50));
  ch.set_degradation(2.0);
  const ChannelGrant g = ch.reserve(SimTime::zero(), SimTime::millis(2));
  EXPECT_EQ(g.end, SimTime::millis(4));
  EXPECT_THROW(ch.set_degradation(0.0), InvalidArgument);
}

TEST(FaultInjectorTest, FlapForcesRetransmissionThenRecovers) {
  const Network net = testbed();
  Engine engine;
  NetSim sim(engine, net, NetSimParams{}, Rng(1));
  TraceLog log;
  sim.set_tracer(log.tracer());

  FaultPlan plan;
  // Segment 0 partitioned for the first 100ms.
  plan.flaps.push_back({SimTime::zero(), SimTime::millis(100), 0});
  FaultInjector injector(sim, plan);
  injector.arm();

  int delivered = 0;
  SimTime delivered_at;
  sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 64, [&] {
    ++delivered;
    delivered_at = engine.now();
  });
  engine.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_GT(delivered_at, SimTime::millis(100));
  EXPECT_GT(sim.retransmissions(), 0u);
  EXPECT_EQ(log.count(TraceEvent::Kind::ChannelDown), 1u);
  EXPECT_EQ(log.count(TraceEvent::Kind::ChannelUp), 1u);
  EXPECT_GT(log.count(TraceEvent::Kind::FragmentLost), 0u);
}

TEST(FaultInjectorTest, GiveUpAfterMaxRoundsInsteadOfHangingOrAsserting) {
  const Network net = testbed();
  Engine engine;
  NetSimParams params;
  params.max_retransmit_rounds = 3;
  params.give_up_after_max_rounds = true;
  NetSim sim(engine, net, params, Rng(1));

  FaultPlan plan;
  // Down for far longer than 3 RTO rounds can ride out.
  plan.flaps.push_back({SimTime::zero(), SimTime::seconds(10), 0});
  FaultInjector injector(sim, plan);
  injector.arm();

  int delivered = 0;
  sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 64, [&] { ++delivered; });
  engine.run();  // must terminate
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(sim.messages_dropped(), 1u);
}

TEST(FaultInjectorTest, OriginShiftsAndClampsPlanTimes) {
  const Network net = testbed();
  Engine engine;
  NetSim sim(engine, net, NetSimParams{}, Rng(1));

  FaultPlan plan;
  plan.crashes.push_back({SimTime::millis(5), ProcessorRef{1, 1}});
  plan.slowdowns.push_back({SimTime::millis(1), SimTime::millis(8),
                            ProcessorRef{0, 0}, 3.0});
  // Origin past the slowdown window: it must not be applied at all; the
  // crash (absolute t=5ms <= origin) applies immediately.
  FaultInjector injector(sim, plan, SimTime::millis(10));
  injector.arm();
  engine.run();
  EXPECT_FALSE(sim.host(ProcessorRef{1, 1}).alive());
  EXPECT_DOUBLE_EQ(sim.host(ProcessorRef{0, 0}).slowdown(), 1.0);
}

TEST(FaultInjectorTest, SecondArmIsAnError) {
  const Network net = testbed();
  Engine engine;
  NetSim sim(engine, net, NetSimParams{}, Rng(1));
  FaultPlan plan;
  plan.crashes.push_back({SimTime::millis(1), ProcessorRef{1, 1}});
  FaultInjector injector(sim, plan);
  injector.arm();
  EXPECT_THROW(injector.arm(), InvalidArgument);
}

// ------------------------------------------------- determinism regression

/// Full stream fingerprint of one chaos scenario: generated plan, injected
/// faults, and background traffic, all rendered from the trace log.
std::string chaos_fingerprint(std::uint64_t seed) {
  const Network net = presets::paper_testbed();
  ChaosOptions options;
  options.control_horizon = SimTime::millis(20);
  options.horizon = SimTime::millis(200);
  options.max_flap = SimTime::millis(120);
  const FaultPlan plan = ChaosRng(seed).make_plan(net, options);

  Engine engine;
  NetSimParams params;
  params.loss_rate = 0.02;
  params.give_up_after_max_rounds = true;
  NetSim sim(engine, net, params, Rng(seed ^ 0x9E3779B97F4A7C15ull));
  TraceLog log;
  sim.set_tracer(log.tracer());
  FaultInjector injector(sim, plan);
  injector.arm();

  // Background traffic across both segments, staggered over the horizon.
  Rng traffic(seed);
  for (int i = 0; i < 40; ++i) {
    const ProcessorRef src{static_cast<ClusterId>(i % 2),
                           static_cast<ProcessorIndex>(i % 6)};
    const ProcessorRef dst{static_cast<ClusterId>((i + 1) % 2),
                           static_cast<ProcessorIndex>((i + 3) % 6)};
    const SimTime at = SimTime::millis(5.0 * i);
    const std::int64_t bytes = traffic.next_int(1, 4000);
    engine.schedule_at(at, [&sim, src, dst, bytes] {
      sim.send(src, dst, bytes, [] {});
    });
  }
  engine.run();
  return plan.describe() + "----\n" + log.render(100000);
}

TEST(FaultDeterminismTest, SameSeedByteIdenticalEventStream) {
  for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
    const std::string first = chaos_fingerprint(seed);
    const std::string second = chaos_fingerprint(seed);
    EXPECT_EQ(first, second) << "seed " << seed;
    EXPECT_FALSE(first.empty());
  }
}

TEST(FaultDeterminismTest, DifferentSeedsDifferentStreams) {
  EXPECT_NE(chaos_fingerprint(1), chaos_fingerprint(2));
}

}  // namespace
}  // namespace netpart::sim

// ----------------------------------------------------- availability churn

namespace netpart {
namespace {

TEST(ChurnTest, ApplyChurnToNetworkMarksRevokedProcessorsLoaded) {
  Network net = presets::paper_testbed();
  std::vector<ChurnEvent> events;
  events.push_back(
      {SimTime::millis(1), ProcessorRef{0, 2}, ChurnEvent::Kind::Revoke});
  events.push_back(
      {SimTime::millis(5), ProcessorRef{0, 2}, ChurnEvent::Kind::Restore});

  apply_churn_to_network(net, events, SimTime::millis(2));
  EXPECT_DOUBLE_EQ(net.cluster(0).processor(2).load, 1.0);

  apply_churn_to_network(net, events, SimTime::millis(10));
  EXPECT_DOUBLE_EQ(net.cluster(0).processor(2).load, 0.0);
}

TEST(ChurnTest, ThresholdPolicyExcludesRevokedProcessors) {
  Network net = presets::paper_testbed();
  const auto managers = make_managers(net, AvailabilityPolicy{});
  const int before = gather_availability(net, managers).total();

  std::vector<ChurnEvent> events;
  events.push_back(
      {SimTime::zero(), ProcessorRef{1, 4}, ChurnEvent::Kind::Revoke});
  apply_churn_to_network(net, events, SimTime::millis(1));
  const AvailabilitySnapshot after = gather_availability(net, managers);
  EXPECT_EQ(after.total(), before - 1);

  const auto indices = managers[1].available_indices(net);
  EXPECT_EQ(std::count(indices.begin(), indices.end(), 4), 0);
}

TEST(ChurnTest, SnapshotVariantDecrementsAndClamps) {
  const Network net = presets::paper_testbed();
  AvailabilitySnapshot snap;
  snap.available = {1, 6};
  std::vector<ChurnEvent> events;
  events.push_back(
      {SimTime::zero(), ProcessorRef{0, 0}, ChurnEvent::Kind::Revoke});
  events.push_back(
      {SimTime::zero(), ProcessorRef{0, 1}, ChurnEvent::Kind::Revoke});
  events.push_back(
      {SimTime::millis(1), ProcessorRef{1, 0}, ChurnEvent::Kind::Revoke});
  const AvailabilitySnapshot out =
      apply_churn(net, std::move(snap), events, SimTime::millis(5));
  EXPECT_EQ(out.available[0], 0);  // clamped, not negative
  EXPECT_EQ(out.available[1], 5);
}

TEST(ChurnTest, AvailablePlacementUsesSurvivingIndices) {
  const Network net = presets::paper_testbed();
  // Cluster 0 lost processors 0 and 1; cluster 1 intact.
  const std::vector<std::vector<ProcessorIndex>> available = {
      {2, 3, 4, 5}, {0, 1, 2, 3, 4, 5}};
  const ProcessorConfig config = {2, 1};
  const Placement p =
      available_placement(net, config, available, {0, 1});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], (ProcessorRef{0, 2}));
  EXPECT_EQ(p[1], (ProcessorRef{0, 3}));
  EXPECT_EQ(p[2], (ProcessorRef{1, 0}));

  const ProcessorConfig too_many = {5, 0};
  EXPECT_THROW(available_placement(net, too_many, available, {0, 1}),
               InvalidArgument);
}

}  // namespace
}  // namespace netpart

// Fleet chaos tier (DESIGN.md §12): a node crash mid-epoch across 20
// seeds.  Each seed varies the simulator's jitter and the workload draw;
// every run must hold the warm-failover contract:
//
//   * the pre-crash workload replicates the zipf hot head, so when the
//     victim dies its replicas already hold >= 50% of its hot entries;
//   * the post-report workload completes every request with zero
//     failovers (routing excludes the dead node up front);
//   * the whole history is deterministic: the same seed twice produces
//     byte-identical outcomes.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "fleet/driver.hpp"
#include "fleet/fleet.hpp"
#include "mmps/manager_protocol.hpp"
#include "net/availability.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace netpart {
namespace {

constexpr std::uint64_t kSeeds = 20;
constexpr fleet::NodeId kVictim = 3;

struct CrashOutcome {
  double warm_fraction = 0.0;
  std::uint64_t pre_ok = 0;
  std::uint64_t post_ok = 0;
  std::uint64_t post_failed = 0;
  std::uint64_t post_failovers = 0;
  std::uint64_t dead_reported = 0;
  std::uint64_t hot_entries = 0;
  double post_rps = 0.0;
};

CrashOutcome run_crash_scenario(std::uint64_t seed) {
  fleet::FleetOptions options;
  options.replication = 2;
  options.node.hot_threshold = 3;
  const Network net = fleet::make_fleet_network(4);
  sim::Engine engine;
  sim::NetSim sim(engine, net, sim::NetSimParams{}, Rng(seed));
  fleet::Fleet fl(sim, options, fleet::synthetic_cold_path(net));
  fl.start();

  fleet::WorkloadOptions w;
  w.requests = 120;
  w.distinct_keys = 24;
  w.zipf_s = 1.1;
  w.seed = seed;

  CrashOutcome out;
  // Warm the hot head, then bump the epoch and re-warm under it, so the
  // crash happens mid-epoch with replicated state at the current epoch.
  (void)fleet::run_workload(fl, w);
  fl.announce_epoch(0, fl.node(0).epoch() + 1);
  (void)fleet::run_workload(fl, w);
  out.pre_ok = fl.stats().ok;
  out.hot_entries = fl.node(kVictim).hot_entries().size();

  sim.host(ProcessorRef{kVictim, 0}).crash();
  out.warm_fraction = fl.warm_fraction_for(kVictim);

  // The PR 1 token ring proves the death; its report feeds every peer
  // table so the post-crash workload routes around the victim up front.
  const std::vector<ClusterManager> managers = make_managers(net, {});
  const mmps::ProtocolResult avail =
      mmps::run_fault_tolerant_protocol(sim, managers);
  fl.report_dead_peers(avail.dead);
  out.dead_reported = avail.dead.size();

  const std::uint64_t failovers_before = fl.stats().failovers;
  const fleet::WorkloadResult after = fleet::run_workload(fl, w);
  out.post_ok = after.ok;
  out.post_failed = after.failed;
  out.post_failovers = fl.stats().failovers - failovers_before;
  out.post_rps = after.rps;
  fl.stop();
  return out;
}

class FleetChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FleetChaosTest, CrashMidEpochFailsOverWarm) {
  const std::uint64_t seed = GetParam();
  const CrashOutcome out = run_crash_scenario(seed);

  EXPECT_GT(out.hot_entries, 0u)
      << "seed " << seed << ": the zipf head never got hot on the victim";
  EXPECT_GE(out.warm_fraction, 0.5)
      << "seed " << seed << ": replicas hold " << 100 * out.warm_fraction
      << "% of the victim's hot entries";
  EXPECT_EQ(out.dead_reported, 1u) << "seed " << seed;
  EXPECT_EQ(out.post_failed, 0u)
      << "seed " << seed << ": failover phase dropped requests";
  EXPECT_EQ(out.post_failovers, 0u)
      << "seed " << seed
      << ": reported deaths must reroute at submit time, not via RTO";
}

TEST_P(FleetChaosTest, SameSeedIsByteDeterministic) {
  const std::uint64_t seed = GetParam();
  const CrashOutcome a = run_crash_scenario(seed);
  const CrashOutcome b = run_crash_scenario(seed);
  EXPECT_EQ(std::tuple(a.warm_fraction, a.pre_ok, a.post_ok, a.post_failed,
                       a.post_failovers, a.hot_entries, a.post_rps),
            std::tuple(b.warm_fraction, b.pre_ok, b.post_ok, b.post_failed,
                       b.post_failovers, b.hot_entries, b.post_rps))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetChaosTest,
                         ::testing::Range<std::uint64_t>(1, kSeeds + 1));

}  // namespace
}  // namespace netpart

// Fleet subsystem tests (DESIGN.md §12): consistent-hash ring, per-node
// peer health, the wire format, epoch adoption, and the full MMPS control
// plane (gossip convergence, forwarding, hot replication, warm failover)
// on the deterministic simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/fleet_lint.hpp"
#include "fleet/driver.hpp"
#include "fleet/fleet.hpp"
#include "fleet/fleet_telemetry.hpp"
#include "fleet/hash_ring.hpp"
#include "fleet/node.hpp"
#include "fleet/peer_table.hpp"
#include "fleet/wire.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/telemetry.hpp"
#include "mmps/manager_protocol.hpp"
#include "net/availability.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netpart {
namespace {

using fleet::HashRing;
using fleet::NodeId;
using fleet::PeerHealth;
using fleet::PeerTable;

// ------------------------------------------------------------- hash ring

TEST(HashRingTest, SameInputsSameRing) {
  const HashRing a({0, 1, 2, 3}, 16);
  const HashRing b({3, 2, 1, 0}, 16);  // construction order is irrelevant
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = rng.next_u64();
    EXPECT_EQ(a.owner(key), b.owner(key));
    EXPECT_EQ(a.replicas(key, 3), b.replicas(key, 3));
  }
}

TEST(HashRingTest, OwnershipIsRoughlyBalanced) {
  // FNV-1a alone lattices vnodes of one node together (one node of four
  // owned ~90% of the space before the avalanche finalizer); this test
  // pins the fix.  With 16 vnodes/node the split is coarse, so the floor
  // is deliberately loose: every node owns at least half its fair share.
  const int kNodes = 4, kKeys = 20000;
  const HashRing ring({0, 1, 2, 3}, 16);
  std::map<NodeId, int> owned;
  Rng rng(2);
  for (int i = 0; i < kKeys; ++i) owned[ring.owner(rng.next_u64())]++;
  for (NodeId n = 0; n < kNodes; ++n) {
    EXPECT_GT(owned[n], kKeys / (2 * kNodes))
        << "node " << n << " owns " << owned[n] << "/" << kKeys;
  }
}

TEST(HashRingTest, RemovingANodeOnlyMovesItsOwnKeys) {
  // The property consistent hashing exists for: keys owned by survivors
  // keep their owner when a node leaves the ring.
  const HashRing full({0, 1, 2, 3}, 16);
  const HashRing without2({0, 1, 3}, 16);
  Rng rng(3);
  int moved = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.next_u64();
    const NodeId before = full.owner(key);
    const NodeId after = without2.owner(key);
    if (before != 2) {
      EXPECT_EQ(after, before) << "survivor-owned key reassigned";
    } else {
      EXPECT_NE(after, 2);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0) << "node 2 owned nothing; balance is broken";
}

TEST(HashRingTest, ReplicasAreDistinctAndStartAtTheOwner) {
  const HashRing ring({0, 1, 2, 3}, 16);
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t key = rng.next_u64();
    const std::vector<NodeId> reps = ring.replicas(key, 3);
    ASSERT_EQ(reps.size(), 3u);
    EXPECT_EQ(reps[0], ring.owner(key));
    EXPECT_EQ(std::set<NodeId>(reps.begin(), reps.end()).size(), 3u);
  }
}

TEST(HashRingTest, ReplicationAboveNodeCountSaturatesAtAllNodes) {
  const HashRing ring({5, 9}, 8);
  const std::vector<NodeId> reps = ring.replicas(42, 6);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(std::set<NodeId>(reps.begin(), reps.end()),
            (std::set<NodeId>{5, 9}));
}

TEST(HashRingTest, SingleNodeOwnsEverythingAndWrapIsCovered) {
  const HashRing ring({7}, 4);
  Rng rng(5);
  bool wrapped = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = rng.next_u64();
    EXPECT_EQ(ring.owner(key), 7);
    // lower_bound_index returning 0 covers both "before the first point"
    // and the wrap past the last point.
    wrapped = wrapped || ring.lower_bound_index(key) == 0;
  }
  EXPECT_TRUE(wrapped);
}

TEST(HashRingTest, RejectsDuplicateNodesAndEmptyLookups) {
  EXPECT_THROW(HashRing({1, 1}, 4), Error);
  EXPECT_THROW(HashRing({0, 1}, 0), Error);
  const HashRing empty({}, 4);
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW(empty.owner(1), Error);
  const HashRing ring({0, 1}, 4);
  EXPECT_THROW(ring.replicas(1, 0), Error);
}

// ------------------------------------------------------------ peer table

TEST(PeerTableTest, SilenceWalksAliveSuspectDead) {
  PeerTable t({0, 1, 2}, /*self=*/0, SimTime::zero());
  EXPECT_EQ(t.health(1), PeerHealth::Alive);
  t.tick(SimTime::millis(200));
  EXPECT_EQ(t.health(1), PeerHealth::Alive);
  t.tick(SimTime::millis(400));  // past suspect_after = 300ms
  EXPECT_EQ(t.health(1), PeerHealth::Suspect);
  EXPECT_EQ(t.health(2), PeerHealth::Suspect);
  t.tick(SimTime::millis(1000));  // past dead_after = 900ms
  EXPECT_EQ(t.health(1), PeerHealth::Dead);
  EXPECT_EQ(t.alive_count(), 1);  // self only
  EXPECT_EQ(t.dead_count(), 2);
}

TEST(PeerTableTest, HeartbeatRevivesASuspectButNeverADeadPeer) {
  PeerTable t({0, 1}, 0, SimTime::zero());
  t.tick(SimTime::millis(400));
  EXPECT_EQ(t.health(1), PeerHealth::Suspect);
  t.record_heartbeat(1, SimTime::millis(450));
  EXPECT_EQ(t.health(1), PeerHealth::Alive);

  t.tick(SimTime::millis(1400));  // silent again for > dead_after
  EXPECT_EQ(t.health(1), PeerHealth::Dead);
  t.record_heartbeat(1, SimTime::millis(1500));
  EXPECT_EQ(t.health(1), PeerHealth::Dead) << "fail-stop: no resurrection";
}

TEST(PeerTableTest, ReportDeadSkipsTheSuspicionWindowAndIsIdempotent) {
  PeerTable t({0, 1, 2}, 0, SimTime::zero());
  t.report_dead(2);
  EXPECT_EQ(t.health(2), PeerHealth::Dead);
  const std::uint64_t v = t.version();
  t.report_dead(2);  // idempotent: no second transition
  EXPECT_EQ(t.version(), v);
  t.report_dead(0);  // self-reports are ignored
  EXPECT_EQ(t.health(0), PeerHealth::Alive);
}

TEST(PeerTableTest, VersionBumpsOnTransitionsOnly) {
  PeerTable t({0, 1}, 0, SimTime::zero());
  const std::uint64_t v0 = t.version();
  t.record_heartbeat(1, SimTime::millis(10));  // alive -> alive: no bump
  EXPECT_EQ(t.version(), v0);
  t.tick(SimTime::millis(400));  // -> suspect
  const std::uint64_t v1 = t.version();
  EXPECT_GT(v1, v0);
  t.tick(SimTime::millis(401));  // suspect -> suspect: no bump
  EXPECT_EQ(t.version(), v1);
  t.record_heartbeat(1, SimTime::millis(500));  // -> alive
  EXPECT_GT(t.version(), v1);
}

TEST(PeerTableTest, RingMembersExcludeTheDeadAndIncludeSelf) {
  PeerTable t({0, 1, 2, 3}, 1, SimTime::zero());
  t.report_dead(3);
  t.tick(SimTime::millis(400));  // 0, 2 suspect; suspects stay in the ring
  EXPECT_EQ(t.ring_members(), (std::vector<NodeId>{0, 1, 2}));
}

// ------------------------------------------------------------ wire format

TEST(FleetWireTest, ScalarRoundTripAndCanonicalFloats) {
  fleet::WireWriter w;
  w.u8(0xab).u32(0xdeadbeef).u64(0x0123456789abcdefULL).i32(-7).i64(-1)
      .f64(-0.0).f64(std::numeric_limits<double>::quiet_NaN()).str("ring");
  const std::vector<std::byte> bytes = w.take();
  fleet::WireReader r(bytes);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(r.i64(), -1);
  const double zero = r.f64();
  EXPECT_EQ(zero, 0.0);
  EXPECT_FALSE(std::signbit(zero)) << "-0.0 must canonicalise to +0.0";
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.str(), "ring");
  EXPECT_TRUE(r.exhausted());
}

TEST(FleetWireTest, TruncatedPayloadsThrowInsteadOfReadingGarbage) {
  fleet::WireWriter w;
  w.u64(12345).str("hello");
  std::vector<std::byte> bytes = w.take();
  for (const std::size_t cut : {std::size_t{0}, std::size_t{4},
                                bytes.size() - 1}) {
    std::vector<std::byte> cut_bytes(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut));
    fleet::WireReader r(cut_bytes);
    EXPECT_THROW((void)(r.u64(), r.str()), Error) << "cut at " << cut;
  }
}

TEST(FleetWireTest, AnnounceAndForwardRoundTrip) {
  const fleet::EpochAnnounce a{/*from=*/3, /*epoch=*/41};
  const fleet::EpochAnnounce a2 = fleet::decode_announce(
      fleet::encode_announce(a));
  EXPECT_EQ(a2.from, 3);
  EXPECT_EQ(a2.epoch, 41u);

  fleet::ForwardEnvelope f;
  f.from = 2;
  f.routing_key = 0x1122334455667788ULL;
  f.reply_tag = 77;
  f.request = fleet::workload_request(9);
  f.request.rate_milli = {1000, 2500};
  const fleet::ForwardEnvelope f2 = fleet::decode_forward(
      fleet::encode_forward(f));
  EXPECT_EQ(f2.from, 2);
  EXPECT_EQ(f2.routing_key, f.routing_key);
  EXPECT_EQ(f2.reply_tag, 77);
  EXPECT_EQ(f2.request.rate_milli, f.request.rate_milli);
  // The decoded request must hash to the original's key (the forward
  // contract: both sides compute identical cache keys).
  EXPECT_EQ(svc::request_key(f2.request, 5, 1),
            svc::request_key(f.request, 5, 1));
}

TEST(FleetWireTest, DecisionRoundTripPreservesEverythingServed) {
  svc::PartitionDecision d;
  d.key = 0xfeedface;
  d.epoch = 6;
  d.partition = PartitionVector(std::vector<std::int64_t>{30, 20, 10});
  d.config = {2, 1};
  d.placement = {{0, 0}, {0, 1}, {1, 0}};
  d.t_c_ms = 12.25;
  d.evaluations = 99;
  const svc::PartitionDecision d2 = fleet::decode_decision(
      fleet::encode_decision(d));
  EXPECT_EQ(d2.key, d.key);
  EXPECT_EQ(d2.epoch, 6u);
  EXPECT_EQ(d2.partition.to_string(), d.partition.to_string());
  EXPECT_EQ(d2.config, d.config);
  EXPECT_EQ(d2.placement, d.placement);
  EXPECT_DOUBLE_EQ(d2.t_c_ms, 12.25);
  EXPECT_EQ(d2.evaluations, 99u);
}

// ------------------------------------------------------------- fleet node

TEST(FleetNodeTest, AdoptingANewerEpochPurgesCacheAndHeat) {
  fleet::NodeOptions options;
  options.hot_threshold = 2;
  fleet::FleetNode node(0, {0, 1}, SimTime::zero(), {}, options);
  auto d = std::make_shared<svc::PartitionDecision>();
  d->key = 11;
  d->epoch = node.epoch();
  node.cache().insert(d);
  EXPECT_FALSE(node.record_hit(11, 101));
  EXPECT_TRUE(node.record_hit(11, 101)) << "threshold crossing replicates";
  EXPECT_FALSE(node.record_hit(11, 101)) << "only the crossing, only once";
  ASSERT_EQ(node.hot_entries().size(), 1u);

  EXPECT_FALSE(node.observe_epoch(node.epoch())) << "same epoch: no adopt";
  EXPECT_TRUE(node.observe_epoch(node.epoch() + 1));
  EXPECT_EQ(node.cache().size(), 0u) << "stale entries purged";
  EXPECT_TRUE(node.hot_entries().empty()) << "stale heat reset";
}

TEST(FleetNodeTest, RingRebuildsWhenThePeerTableTransitions) {
  fleet::FleetNode node(0, {0, 1, 2}, SimTime::zero(), {}, {});
  EXPECT_EQ(node.ring().num_nodes(), 3);
  node.peers().report_dead(2);
  EXPECT_EQ(node.ring().num_nodes(), 2) << "dead peer left the ring";
  EXPECT_EQ(node.ring().nodes(), (std::vector<NodeId>{0, 1}));
}

// ------------------------------------------- decision cache (satellite)

TEST(DecisionCacheShardTest, ShardSnapshotsSumToTheGlobalView) {
  svc::DecisionCache cache(/*capacity=*/64, /*shards=*/4);
  EXPECT_EQ(cache.num_shards(), 4);
  EXPECT_EQ(cache.shard_capacity(), 16u);
  for (std::uint64_t k = 1; k <= 40; ++k) {
    auto d = std::make_shared<svc::PartitionDecision>();
    d->key = k * 0x9e3779b97f4a7c15ULL;  // spread across shards
    d->epoch = 1;
    cache.insert(d);
    if (k % 2 == 0) {
      EXPECT_NE(cache.lookup(d->key), nullptr);
    }
  }
  (void)cache.lookup(0xdead);  // one global miss

  const std::vector<svc::DecisionCache::ShardSnapshot> shards =
      cache.shard_stats();
  ASSERT_EQ(shards.size(), 4u);
  std::size_t total_size = 0;
  std::uint64_t total_hits = 0, total_misses = 0;
  int populated = 0;
  for (const auto& s : shards) {
    EXPECT_LE(s.size, cache.shard_capacity());
    total_size += s.size;
    total_hits += s.stats.hits;
    total_misses += s.stats.misses;
    if (s.size > 0) ++populated;
  }
  EXPECT_EQ(total_size, cache.size());
  EXPECT_EQ(total_hits, cache.stats().hits);
  EXPECT_EQ(total_misses, cache.stats().misses);
  EXPECT_EQ(total_hits, 20u);
  EXPECT_GE(populated, 2) << "well-spread keys must touch several shards";
}

// --------------------------------------------------------- fleet on MMPS

struct FleetBed {
  Network net;
  sim::Engine engine;
  sim::NetSim sim;
  fleet::Fleet fl;

  explicit FleetBed(int nodes, fleet::FleetOptions options = {},
                    std::uint64_t seed = 1)
      : net(fleet::make_fleet_network(nodes)),
        sim(engine, net, sim::NetSimParams{}, Rng(seed)),
        fl(sim, options, fleet::synthetic_cold_path(net)) {
    fl.start();
  }
  ~FleetBed() { fl.stop(); }
};

/// Step until `done` returns true or `max_steps` engine events elapse.
template <typename Pred>
bool step_until(sim::Engine& engine, Pred done, int max_steps = 200000) {
  for (int i = 0; i < max_steps; ++i) {
    if (done()) return true;
    if (!engine.step()) return done();
  }
  return done();
}

TEST(FleetTest, EpochGossipConvergesWithinTwoNRounds) {
  for (const int nodes : {2, 4, 8}) {
    fleet::FleetOptions options;
    // Quiesce heartbeats so convergence is attributable to the gossip
    // ring alone (heartbeats piggyback epochs and only accelerate).
    options.heartbeat_period = SimTime::seconds(100);
    options.peer.suspect_after = SimTime::seconds(300);
    options.peer.dead_after = SimTime::seconds(600);
    FleetBed bed(nodes, options);
    const std::uint64_t epoch = 7;
    bed.fl.announce_epoch(0, epoch);
    const auto converged = [&] {
      for (NodeId id : bed.fl.node_ids()) {
        if (bed.fl.node(id).epoch() != epoch) return false;
      }
      return true;
    };
    EXPECT_TRUE(step_until(bed.engine, converged));
    EXPECT_LE(bed.fl.stats().gossip_rounds,
              2 * static_cast<std::uint64_t>(nodes))
        << nodes << " nodes";
  }
}

TEST(FleetTest, NonOwnerEntryForwardsAndOwnerEntryServesLocally) {
  FleetBed bed(4);
  const svc::PartitionRequest req = fleet::workload_request(1);
  const NodeId owner =
      bed.fl.node(0).ring().owner(bed.fl.routing_key(req));
  const NodeId not_owner = (owner + 1) % 4;

  fleet::FleetReply last;
  int replies = 0;
  const auto done = [&](const fleet::FleetReply& r) {
    last = r;
    ++replies;
  };
  bed.fl.submit(req, not_owner, done);
  ASSERT_TRUE(step_until(bed.engine, [&] { return replies == 1; }));
  EXPECT_TRUE(last.ok);
  EXPECT_FALSE(last.cache_hit) << "first sight of the key: a cold compute";
  EXPECT_EQ(last.served_by, owner);
  EXPECT_EQ(bed.fl.stats().forwards, 1u);
  EXPECT_GT(last.latency, SimTime::zero());

  bed.fl.submit(req, owner, done);
  ASSERT_TRUE(step_until(bed.engine, [&] { return replies == 2; }));
  EXPECT_TRUE(last.ok);
  EXPECT_TRUE(last.cache_hit) << "owner cached the forwarded compute";
  EXPECT_EQ(bed.fl.stats().forwards, 1u) << "owner entry never forwards";
  EXPECT_EQ(bed.fl.stats().local_serves, 1u);
}

TEST(FleetTest, HotKeysReplicateAtTheThresholdAndWarmTheReplicas) {
  fleet::FleetOptions options;
  options.replication = 2;
  options.node.hot_threshold = 2;
  FleetBed bed(4, options);
  const svc::PartitionRequest req = fleet::workload_request(2);
  const std::uint64_t rk = bed.fl.routing_key(req);
  const std::vector<NodeId> reps = bed.fl.node(0).ring().replicas(rk, 2);

  int replies = 0;
  const auto done = [&](const fleet::FleetReply&) { ++replies; };
  // 1 cold + hot_threshold hits at the owner crosses the threshold once.
  for (int i = 0; i < 3; ++i) bed.fl.submit(req, reps[0], done);
  ASSERT_TRUE(step_until(bed.engine, [&] { return replies == 3; }));
  ASSERT_TRUE(step_until(bed.engine, [&] {
    return bed.fl.stats().replica_inserts >= 1;
  }));
  EXPECT_EQ(bed.fl.stats().replications_pushed, 1u);
  EXPECT_EQ(bed.fl.stats().replica_inserts, 1u);

  // The replica now answers for the owner's key without forwarding.
  const std::uint64_t cache_key =
      svc::request_key(req, bed.fl.signature(), bed.fl.node(reps[1]).epoch());
  EXPECT_NE(bed.fl.node(reps[1]).cache().peek(cache_key), nullptr);
  EXPECT_EQ(bed.fl.warm_fraction_for(reps[0]), 1.0);

  const std::uint64_t forwards_before = bed.fl.stats().forwards;
  bed.fl.submit(req, reps[1], done);
  ASSERT_TRUE(step_until(bed.engine, [&] { return replies == 4; }));
  EXPECT_EQ(bed.fl.stats().forwards, forwards_before)
      << "warm replica serves without a forward hop";
  EXPECT_EQ(bed.fl.stats().replica_serves, 1u);
}

TEST(FleetTest, StaleReplicationPushesAreDroppedByNewerEpochs) {
  fleet::FleetOptions options;
  options.replication = 2;
  options.node.hot_threshold = 1;
  // Quiesce heartbeats/gossip so the replica's epoch stays ahead.
  options.heartbeat_period = SimTime::seconds(100);
  options.gossip_period = SimTime::seconds(100);
  options.peer.suspect_after = SimTime::seconds(300);
  options.peer.dead_after = SimTime::seconds(600);
  FleetBed bed(4, options);
  const svc::PartitionRequest req = fleet::workload_request(3);
  const std::vector<NodeId> reps =
      bed.fl.node(0).ring().replicas(bed.fl.routing_key(req), 2);
  // The replica has already adopted a newer epoch than the owner.
  ASSERT_TRUE(bed.fl.node(reps[1]).observe_epoch(
      bed.fl.node(reps[0]).epoch() + 1));

  int replies = 0;
  const auto done = [&](const fleet::FleetReply&) { ++replies; };
  bed.fl.submit(req, reps[0], done);  // cold
  bed.fl.submit(req, reps[0], done);  // hit -> crosses threshold -> push
  ASSERT_TRUE(step_until(bed.engine, [&] {
    return replies == 2 && bed.fl.stats().replications_pushed >= 1;
  }));
  // Give the in-flight push ample steps to land: it must be rejected,
  // not inserted.  (The fleet's periodic loops keep the event queue
  // non-empty forever, so the drain must be step-bounded.)
  (void)step_until(bed.engine,
                   [&] { return bed.fl.stats().replica_inserts > 0; },
                   /*max_steps=*/5000);
  EXPECT_EQ(bed.fl.stats().replica_inserts, 0u)
      << "a push computed under an older epoch must not enter the cache";
}

TEST(FleetTest, DeadPeerReportsRerouteWithoutTimeouts) {
  fleet::FleetOptions options;
  options.replication = 2;
  FleetBed bed(4, options);
  // Find a key owned by node 3 so its death matters to this request.
  svc::PartitionRequest req;
  std::vector<NodeId> reps;
  for (int k = 0; k < 64; ++k) {
    req = fleet::workload_request(k);
    reps = bed.fl.node(0).ring().replicas(bed.fl.routing_key(req), 2);
    if (reps[0] == 3) break;
  }
  ASSERT_EQ(reps[0], 3) << "no key owned by node 3 in 64 tries";

  bed.sim.host(ProcessorRef{3, 0}).crash();
  bed.fl.report_dead_peers({3});
  EXPECT_FALSE(bed.fl.node_alive(3));
  EXPECT_EQ(bed.fl.first_alive(), 0);

  fleet::FleetReply last;
  int replies = 0;
  bed.fl.submit(req, 0, [&](const fleet::FleetReply& r) {
    last = r;
    ++replies;
  });
  ASSERT_TRUE(step_until(bed.engine, [&] { return replies == 1; }));
  EXPECT_TRUE(last.ok);
  EXPECT_NE(last.served_by, 3);
  EXPECT_EQ(last.failovers, 0)
      << "a reported death reroutes at submit time, no RTO spent";
  // The surviving nodes rebuilt their rings without the dead peer.
  EXPECT_EQ(bed.fl.node(0).ring().num_nodes(), 3);
}

TEST(FleetTest, WorkloadIsDeterministicForAGivenSeed) {
  const auto run = [](std::uint64_t seed) {
    fleet::FleetOptions options;
    options.replication = 2;
    FleetBed bed(4, options, seed);
    fleet::WorkloadOptions w;
    w.requests = 60;
    w.seed = seed;
    const fleet::WorkloadResult r = fleet::run_workload(bed.fl, w);
    return std::tuple(r.ok, r.hit_replies, r.rps, bed.fl.stats().forwards,
                      r.mean_latency_ms);
  };
  const auto a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b) << "same seed, same simulated history";
  EXPECT_NE(std::get<2>(a), std::get<2>(c)) << "seeds must matter";
}

// ------------------------------------------------- distributed tracing

TEST(FleetWireTest, TraceContextRoundTripsAndAbsenceDecodesInvalid) {
  obs::TraceContext ctx;
  ctx.trace_id = 0x1111222233334444ULL;
  ctx.span_id = 0x5555666677778888ULL;
  ctx.parent_span_id = 0x99aabbccddeeff00ULL;
  fleet::WireWriter w;
  fleet::encode_trace_context_into(w, ctx);
  const std::vector<std::byte> bytes = w.take();
  EXPECT_EQ(bytes.size(), 8u + 24u) << "length prefix + three u64 ids";
  fleet::WireReader r(bytes);
  const obs::TraceContext back = fleet::decode_trace_context_from(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back, ctx);

  // An invalid context encodes as the absent field (length 0) and decodes
  // back invalid: untraced requests pay 8 wire bytes, not 32.
  fleet::WireWriter w2;
  fleet::encode_trace_context_into(w2, obs::TraceContext{});
  const std::vector<std::byte> bytes2 = w2.take();
  EXPECT_EQ(bytes2.size(), 8u);
  fleet::WireReader r2(bytes2);
  EXPECT_FALSE(fleet::decode_trace_context_from(r2).valid());
  EXPECT_TRUE(r2.exhausted());
}

TEST(FleetWireTest, ForwardAndReplicateEnvelopesCarryTheTraceContext) {
  fleet::ForwardEnvelope f;
  f.from = 1;
  f.routing_key = 99;
  f.reply_tag = 5;
  f.trace = obs::TraceContext{0xaaa, 0xbbb, 0xccc};
  f.request = fleet::workload_request(4);
  const fleet::ForwardEnvelope f2 =
      fleet::decode_forward(fleet::encode_forward(f));
  EXPECT_EQ(f2.trace, f.trace);

  fleet::ReplicateEnvelope rep;
  rep.trace = obs::TraceContext{7, 8, 9};
  rep.decision.key = 0xfeed;
  rep.decision.epoch = 2;
  rep.decision.partition = PartitionVector(std::vector<std::int64_t>{3, 1});
  const fleet::ReplicateEnvelope rep2 =
      fleet::decode_replicate(fleet::encode_replicate(rep));
  EXPECT_EQ(rep2.trace, rep.trace);
  EXPECT_EQ(rep2.decision.key, 0xfeedu);
  EXPECT_EQ(rep2.decision.epoch, 2u);
  EXPECT_EQ(rep2.decision.partition.to_string(),
            rep.decision.partition.to_string());
}

std::optional<obs::SpanRecord> find_span(
    const std::vector<obs::SpanRecord>& spans, const std::string& name) {
  for (const obs::SpanRecord& s : spans) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

TEST(FleetTraceTest, ForwardedServeJoinsTheRouterTraceAcrossTheWire) {
  fleet::FleetOptions options;
  options.tracing = true;
  options.trace_seed = 21;
  FleetBed bed(4, options);
  const svc::PartitionRequest req = fleet::workload_request(1);
  const NodeId owner = bed.fl.node(0).ring().owner(bed.fl.routing_key(req));
  const NodeId entry = (owner + 1) % 4;
  int replies = 0;
  bed.fl.submit(req, entry, [&](const fleet::FleetReply&) { ++replies; });
  ASSERT_TRUE(step_until(bed.engine, [&] { return replies == 1; }));

  const auto request = find_span(bed.fl.node(entry).telemetry().spans(),
                                 "fleet.request");
  const auto forward = find_span(bed.fl.node(entry).telemetry().spans(),
                                 "fleet.forward");
  const auto serve = find_span(bed.fl.node(owner).telemetry().spans(),
                               "fleet.serve");
  ASSERT_TRUE(request.has_value());
  ASSERT_TRUE(forward.has_value());
  ASSERT_TRUE(serve.has_value()) << "owner recorded no serve span";
  EXPECT_NE(request->trace_id, 0u);
  EXPECT_EQ(request->parent_span_id, 0u) << "the request span is the root";
  EXPECT_EQ(forward->trace_id, request->trace_id);
  EXPECT_EQ(forward->parent_span_id, request->span_id);
  EXPECT_EQ(serve->trace_id, request->trace_id)
      << "trace id must survive the MMPS hop";
  EXPECT_EQ(serve->parent_span_id, forward->span_id)
      << "the owner's serve span parents under the router's forward span";
  EXPECT_NE(serve->span_id, forward->span_id)
      << "the owner draws its own span id from its own stream";
}

TEST(FleetTraceTest, TracingOffRecordsNoSpansAndNoWireContext) {
  FleetBed bed(2);  // options.tracing defaults off
  const svc::PartitionRequest req = fleet::workload_request(1);
  const NodeId owner = bed.fl.node(0).ring().owner(bed.fl.routing_key(req));
  int replies = 0;
  bed.fl.submit(req, (owner + 1) % 2,
                [&](const fleet::FleetReply&) { ++replies; });
  ASSERT_TRUE(step_until(bed.engine, [&] { return replies == 1; }));
  for (NodeId id : bed.fl.node_ids()) {
    EXPECT_EQ(bed.fl.node(id).telemetry().span_count(), 0u) << "node " << id;
    EXPECT_FALSE(bed.fl.node(id).new_root().valid());
  }
}

TEST(FleetTelemetryTest, MergedExportsAreByteIdenticalForASeed) {
  const auto run = [](std::uint64_t seed) {
    fleet::FleetOptions options;
    options.replication = 2;
    options.tracing = true;
    options.trace_seed = seed;
    FleetBed bed(4, options, seed);
    fleet::WorkloadOptions w;
    w.requests = 80;
    w.seed = seed;
    (void)fleet::run_workload(bed.fl, w);
    fleet::FleetTelemetry ft(bed.fl);
    std::ostringstream trace;
    obs::write_chrome_trace(trace, ft.lanes());
    return std::pair(ft.merged_metrics_text(), trace.str());
  };
  const auto a = run(9);
  const auto b = run(9);
  EXPECT_EQ(a.first, b.first)
      << "merged metrics must be byte-identical across same-seed runs";
  EXPECT_EQ(a.second, b.second)
      << "merged chrome trace must be byte-identical across same-seed runs";

  // The merged dump carries the per-hop attribution histograms, the
  // node-dimensioned rows, and the loss counters.
  EXPECT_NE(a.first.find("latency fleet.request.route_us"),
            std::string::npos);
  EXPECT_NE(a.first.find("latency fleet.request.total_us"),
            std::string::npos);
  EXPECT_NE(a.first.find("{node=0}"), std::string::npos);
  EXPECT_NE(a.first.find("counter sim.messages_dropped"), std::string::npos);
  EXPECT_NE(a.second.find("node0"), std::string::npos)
      << "per-node pid lanes must be named in the merged trace";
}

TEST(FleetTelemetryTest, HealthRowsSumToTheWorkload) {
  fleet::FleetOptions options;
  options.replication = 2;
  FleetBed bed(4, options);
  fleet::WorkloadOptions w;
  w.requests = 60;
  const fleet::WorkloadResult r = fleet::run_workload(bed.fl, w);
  ASSERT_EQ(r.ok, 60u);
  fleet::FleetTelemetry ft(bed.fl);
  const std::vector<fleet::NodeHealth> health = ft.health();
  ASSERT_EQ(health.size(), 4u);
  std::uint64_t requests = 0;
  for (const fleet::NodeHealth& h : health) {
    EXPECT_TRUE(h.alive);
    EXPECT_GE(h.forward_ratio, 0.0);
    EXPECT_LE(h.forward_ratio, 1.0);
    EXPECT_EQ(h.dead_peers, 0);
    requests += h.requests;
  }
  EXPECT_EQ(requests, 60u) << "entry nodes account for every request once";
  const std::string text = ft.health_text();
  EXPECT_NE(text.find("node 0 alive=1"), std::string::npos);
  EXPECT_NE(text.find("dead_peers=0"), std::string::npos);
}

// ------------------------------------------------------------ fleet lint

TEST(FleetLintTest, ParseRoundTripsAndRejectsUnknownKeys) {
  const analysis::FleetLintConfig c = analysis::parse_fleet_config(
      "nodes=8,replication=3,vnodes=64,hot_threshold=5,heartbeat_ms=20,"
      "gossip_ms=10,"
      "suspect_ms=60,dead_ms=180,forward_timeout_ms=50");
  EXPECT_EQ(c.nodes, 8);
  EXPECT_EQ(c.replication, 3);
  EXPECT_EQ(c.vnodes, 64);
  EXPECT_EQ(c.hot_threshold, 5);
  EXPECT_DOUBLE_EQ(c.dead_ms, 180.0);
  EXPECT_THROW(analysis::parse_fleet_config("nodes=4,bogus=1"), ConfigError);
  EXPECT_THROW(analysis::parse_fleet_config("nodes"), ConfigError);
  EXPECT_THROW(analysis::parse_fleet_config("nodes=four"), ConfigError);
}

std::vector<std::string> codes_of(const analysis::DiagnosticSink& sink) {
  std::vector<std::string> codes;
  for (const auto& d : sink.diagnostics()) codes.push_back(d.code);
  return codes;
}

TEST(FleetLintTest, EveryCodeFires) {
  using analysis::FleetLintConfig;
  const auto lint = [](FleetLintConfig config) {
    analysis::DiagnosticSink sink;
    analysis::lint_fleet_config(config, "<test>", sink);
    return sink;
  };

  FleetLintConfig bad_repl;
  bad_repl.nodes = 2;
  bad_repl.replication = 3;
  {
    const auto sink = lint(bad_repl);
    EXPECT_GE(sink.errors(), 1);
    const auto codes = codes_of(sink);
    EXPECT_NE(std::find(codes.begin(), codes.end(), "NP-F001"), codes.end());
  }

  FleetLintConfig bad_nodes;
  bad_nodes.nodes = 0;
  {
    const auto codes = codes_of(lint(bad_nodes));
    EXPECT_NE(std::find(codes.begin(), codes.end(), "NP-F002"), codes.end());
  }

  FleetLintConfig coarse;
  coarse.nodes = 4;
  coarse.vnodes = 2;  // warning: too coarse to balance
  {
    const auto sink = lint(coarse);
    EXPECT_EQ(sink.errors(), 0);
    const auto codes = codes_of(sink);
    EXPECT_NE(std::find(codes.begin(), codes.end(), "NP-F003"), codes.end());
  }

  FleetLintConfig bad_order;
  bad_order.nodes = 2;
  bad_order.suspect_ms = 900;
  bad_order.dead_ms = 300;  // dead <= suspect skips Suspect entirely
  {
    const auto codes = codes_of(lint(bad_order));
    EXPECT_NE(std::find(codes.begin(), codes.end(), "NP-F004"), codes.end());
  }

  FleetLintConfig no_replicas;
  no_replicas.nodes = 4;
  no_replicas.replication = 1;  // warning: every failover is cold
  {
    const auto sink = lint(no_replicas);
    EXPECT_EQ(sink.errors(), 0);
    const auto codes = codes_of(sink);
    EXPECT_NE(std::find(codes.begin(), codes.end(), "NP-F005"), codes.end());
  }

  FleetLintConfig flappy;
  flappy.nodes = 2;
  flappy.heartbeat_ms = 400;  // >= suspect_ms: healthy peers oscillate
  {
    const auto codes = codes_of(lint(flappy));
    EXPECT_NE(std::find(codes.begin(), codes.end(), "NP-F006"), codes.end());
  }
}

TEST(FleetLintTest, ObservabilityPathsParseAndNPF007Fires) {
  using analysis::FleetLintConfig;
  const FleetLintConfig parsed = analysis::parse_fleet_config(
      "nodes=4,trace_out=t.json,metrics_out=m.txt,health_out=h.txt");
  EXPECT_EQ(parsed.trace_out, "t.json");
  EXPECT_EQ(parsed.metrics_out, "m.txt");
  EXPECT_EQ(parsed.health_out, "h.txt");

  const auto lint = [](FleetLintConfig config) {
    analysis::DiagnosticSink sink;
    analysis::lint_fleet_config(config, "<test>", sink);
    return sink;
  };

  FleetLintConfig clash;
  clash.nodes = 2;
  clash.trace_out = "out.json";
  clash.metrics_out = "out.json";  // the later export clobbers the earlier
  {
    const auto sink = lint(clash);
    EXPECT_GE(sink.errors(), 1);
    const auto codes = codes_of(sink);
    EXPECT_NE(std::find(codes.begin(), codes.end(), "NP-F007"), codes.end());
  }

  FleetLintConfig missing_dir;
  missing_dir.nodes = 2;
  missing_dir.health_out = "/no/such/dir/health.txt";
  {
    const auto codes = codes_of(lint(missing_dir));
    EXPECT_NE(std::find(codes.begin(), codes.end(), "NP-F007"), codes.end());
  }

  FleetLintConfig is_dir;
  is_dir.nodes = 2;
  is_dir.metrics_out = "/tmp";  // a directory, not a file path
  {
    const auto codes = codes_of(lint(is_dir));
    EXPECT_NE(std::find(codes.begin(), codes.end(), "NP-F007"), codes.end());
  }

  FleetLintConfig good;
  good.nodes = 2;
  good.trace_out = "trace.json";
  good.metrics_out = "metrics.txt";
  good.health_out = "health.txt";
  EXPECT_EQ(lint(good).errors(), 0)
      << "distinct relative paths in a writable cwd pass";
  EXPECT_NO_THROW(analysis::require_fleet(good));
}

TEST(FleetLintTest, RequireFleetThrowsOnErrorsAndPassesWarnings) {
  analysis::FleetLintConfig bad;
  bad.nodes = 2;
  bad.replication = 5;
  EXPECT_THROW(analysis::require_fleet(bad), InvalidArgument);

  analysis::FleetLintConfig warn_only;
  warn_only.nodes = 4;
  warn_only.replication = 1;  // NP-F005 warning
  EXPECT_NO_THROW(analysis::require_fleet(warn_only));
}

}  // namespace
}  // namespace netpart

// Randomised end-to-end property tests ("fuzz-lite"): random traffic
// patterns through MMPS and random partition requests through the full
// pipeline must uphold the library invariants for every seed.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>

#include "analysis/model_lint.hpp"
#include "analysis/net_lint.hpp"
#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/partitioner.hpp"
#include "fleet/wire.hpp"
#include "mmps/system.hpp"
#include "net/presets.hpp"
#include "obs/trace_context.hpp"
#include "util/error.hpp"

namespace netpart {
namespace {

class RandomTraffic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTraffic, MmpsDeliversEverythingInOrder) {
  const Network net = presets::paper_testbed();
  sim::Engine engine;
  sim::NetSimParams params;
  params.loss_rate = 0.15;
  params.rto = SimTime::millis(3);
  sim::NetSim netsim(engine, net, params, Rng(GetParam()));
  mmps::System mmps(netsim);
  Rng rng = Rng(GetParam()).stream(1);

  struct Key {
    ProcessorRef src;
    ProcessorRef dst;
    std::int32_t tag;
    auto operator<=>(const Key&) const = default;
  };
  std::map<Key, int> sent_count;
  std::map<Key, int> next_expected;  // sequence encoded in payload size
  int delivered = 0;
  int total = 0;

  const auto random_ref = [&] {
    const auto c = static_cast<ClusterId>(rng.next_int(0, 1));
    const auto i = static_cast<ProcessorIndex>(rng.next_int(0, 5));
    return ProcessorRef{c, i};
  };

  for (int round = 0; round < 120; ++round) {
    const ProcessorRef src = random_ref();
    ProcessorRef dst = random_ref();
    if (src == dst) dst.index = (dst.index + 1) % 6;
    const auto tag = static_cast<std::int32_t>(rng.next_int(0, 3));
    const Key key{src, dst, tag};
    const int seq = sent_count[key]++;
    ++total;
    // Payload size encodes the per-key sequence number.
    mmps.send(src, dst, tag,
              std::vector<std::byte>(static_cast<std::size_t>(seq + 1)));
    mmps.recv(dst, src, tag, [&, key](mmps::Message msg) {
      // Per-key FIFO: sizes arrive in send order.
      EXPECT_EQ(msg.payload.size(),
                static_cast<std::size_t>(next_expected[key] + 1));
      ++next_expected[key];
      ++delivered;
    });
  }
  engine.run();
  EXPECT_EQ(delivered, total);
  EXPECT_EQ(mmps.unclaimed(), 0u);
}

TEST_P(RandomTraffic, PipelineInvariantsOnRandomNetworks) {
  Rng rng(GetParam() * 7919);
  const Network net = presets::random_network(
      rng, 2 + static_cast<int>(GetParam() % 4), 6);
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  Rng size_rng = rng.stream(3);

  for (int trial = 0; trial < 5; ++trial) {
    const int n = static_cast<int>(size_rng.next_int(snap.total(), 4000));
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    CycleEstimator est(net, cal.db, spec);
    const PartitionResult r = partition(est, snap);
    // Invariants: capacity respected, domain covered, positive estimate,
    // placement consistent with the configuration.
    for (ClusterId c = 0; c < net.num_clusters(); ++c) {
      ASSERT_LE(r.config[static_cast<std::size_t>(c)],
                snap.available[static_cast<std::size_t>(c)]);
    }
    ASSERT_EQ(r.estimate.partition.total(), n);
    ASSERT_GT(r.estimate.t_c_ms, 0.0);
    ASSERT_EQ(static_cast<int>(r.placement.size()),
              config_total(r.config));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraffic,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// --- degenerate inputs ----------------------------------------------------
//
// The estimator's ClusterObjective memo uses NaN as its "empty" sentinel
// (estimator.hpp), so a NaN cost leaking out of the estimator would be
// indistinguishable from an un-evaluated slot.  Two lines of defense are
// locked down here: npcheck's lints flag the inputs that could produce
// one (NaN-prone fitted models, zero-processor clusters), and for valid
// but degenerate inputs -- single-processor segments, PDU counts at the
// starvation edge -- every cost field stays finite, scalar and batched.

ProcessorType fuzz_proc(const char* name, int flop_ns) {
  ProcessorType type;
  type.name = name;
  type.flop_time = SimTime::nanos(flop_ns);
  type.int_time = SimTime::nanos(flop_ns / 2);
  return type;
}

TEST(DegenerateInputs, NpcheckFlagsEmptyNetworksAndNanModels) {
  // A network with no clusters has no processors to give a PDU to:
  // NP-N005.  (A zero-processor or zero-rate *cluster* is rejected even
  // earlier, by the Cluster constructor's own invariants -- the lint
  // branch exists for hand-built part lists that bypass it.)
  const std::vector<Segment> segments = {{0, 10e6, SimTime::micros(100)}};
  analysis::DiagnosticSink net_sink;
  analysis::lint_network_parts({}, segments, {}, "<fuzz-net>", net_sink);
  EXPECT_NE(net_sink.render_text().find("[NP-N005]"), std::string::npos)
      << net_sink.render_text();

  // A fit with a non-finite coefficient poisons every estimate that
  // touches it: NP-M001, as an error, before it ever reaches a search.
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  CostModelDb db = calibrate(net, params).db;
  Eq1Fit poisoned = db.comm_fit(0, Topology::OneD);
  poisoned.c3 = std::numeric_limits<double>::quiet_NaN();
  db.set_comm(0, Topology::OneD, poisoned);
  analysis::DiagnosticSink model_sink;
  analysis::lint_cost_model(db, net, "<fuzz-model>", model_sink);
  EXPECT_FALSE(model_sink.clean());
  EXPECT_NE(model_sink.render_text().find("[NP-M001]"), std::string::npos)
      << model_sink.render_text();
}

TEST(DegenerateInputs, SingleProcessorSegmentsStayFiniteAndBatchExact) {
  // A singleton cluster has no intra-cluster benchmark, so model lint
  // warns (NP-M006) and the estimator substitutes its conservative proxy
  // -- which must still be finite and bitwise identical across the
  // scalar and batched engines.
  const std::vector<Cluster> clusters = {
      Cluster(0, "lone", fuzz_proc("fast", 200), 0, 1),
      Cluster(1, "farm", fuzz_proc("slow", 400), 1, 5)};
  const std::vector<Segment> segments = {{0, 10e6, SimTime::micros(100)},
                                         {1, 10e6, SimTime::micros(100)}};
  const std::vector<RouterLink> routers = {
      {0, 1, SimTime::nanos(600), SimTime::micros(50)}};
  const Network net(clusters, segments, routers);
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);

  analysis::DiagnosticSink sink;
  analysis::lint_cost_model(cal.db, net, "<fuzz-model>", sink);
  EXPECT_NE(sink.render_text().find("[NP-M006]"), std::string::npos)
      << sink.render_text();

  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  const std::vector<ProcessorConfig> configs = {
      {1, 0}, {1, 1}, {0, 5}, {1, 5}, {1, 3}, {0, 1}};
  std::vector<FastEstimate> batched(configs.size());
  EstimatorScratch batch_scratch;
  est.estimate_batch(configs.data(), configs.size(), batched.data(),
                     batch_scratch);
  EstimatorScratch scalar_scratch;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const FastEstimate want = est.estimate_into(configs[i], scalar_scratch);
    ASSERT_TRUE(std::isfinite(want.t_c_ms)) << "config " << i;
    ASSERT_TRUE(std::isfinite(want.t_comm_ms)) << "config " << i;
    ASSERT_EQ(want.t_c_ms, batched[i].t_c_ms) << "config " << i;
    ASSERT_EQ(want.t_comm_ms, batched[i].t_comm_ms) << "config " << i;
  }
}

class StarvationPressure : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StarvationPressure, NoNanReachesTheObjectiveCache) {
  // PDU counts at or just above the processor count force zero-base
  // shares and the starvation-repair path; heterogeneous speeds make the
  // shares maximally lopsided.  Nothing in the pipeline may emit NaN --
  // the ClusterObjective memo's empty sentinel must stay unambiguous --
  // and the batched engine must agree bitwise with the scalar one even
  // on the repair path.
  Rng rng(GetParam() ^ 0x57A8);
  const Network net = presets::random_network(
      rng, 2 + static_cast<int>(GetParam() % 3), 5);
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  Rng config_rng = rng.stream(5);
  EstimatorScratch batch_scratch;
  EstimatorScratch scalar_scratch;
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<ProcessorConfig> configs;
    int max_total = 1;
    for (int c = 0; c < 2 * BatchScratch::kLanes; ++c) {
      ProcessorConfig config(static_cast<std::size_t>(net.num_clusters()),
                             0);
      int total = 0;
      for (ClusterId cl = 0; cl < net.num_clusters(); ++cl) {
        config[static_cast<std::size_t>(cl)] = static_cast<int>(
            config_rng.next_int(0, net.cluster(cl).size()));
        total += config[static_cast<std::size_t>(cl)];
      }
      if (total == 0) continue;
      max_total = std::max(max_total, total);
      configs.push_back(std::move(config));
    }
    // n at the starvation edge: barely one PDU per processor.
    const int n = max_total + static_cast<int>(config_rng.next_int(0, 2));
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    CycleEstimator est(net, cal.db, spec);
    std::vector<ProcessorConfig> fitting;
    for (const ProcessorConfig& config : configs) {
      if (config_total(config) <= n) fitting.push_back(config);
    }
    std::vector<FastEstimate> batched(fitting.size());
    est.estimate_batch(fitting.data(), fitting.size(), batched.data(),
                       batch_scratch);
    for (std::size_t i = 0; i < fitting.size(); ++i) {
      const FastEstimate want =
          est.estimate_into(fitting[i], scalar_scratch);
      ASSERT_TRUE(std::isfinite(batched[i].t_c_ms))
          << "trial " << trial << " i " << i;
      ASSERT_TRUE(std::isfinite(batched[i].t_comp_ms));
      ASSERT_TRUE(std::isfinite(batched[i].t_comm_ms));
      ASSERT_EQ(want.t_c_ms, batched[i].t_c_ms)
          << "trial " << trial << " i " << i;
      ASSERT_EQ(want.t_elapsed_ms, batched[i].t_elapsed_ms);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StarvationPressure,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DegenerateInputs, TruncatedTraceContextBytesThrowInsteadOfCrashing) {
  // A trace context on the wire is u64 length (0 or 24) + that many
  // bytes.  Every truncation of a valid encoding, and every length the
  // format does not define, must surface as InvalidArgument from the
  // reader -- never a crash or a garbage context.
  obs::TraceContext ctx;
  ctx.trace_id = 0x0123456789abcdefULL;
  ctx.span_id = 0xfedcba9876543210ULL;
  ctx.parent_span_id = 0x1111111111111111ULL;
  fleet::WireWriter w;
  fleet::encode_trace_context_into(w, ctx);
  const std::vector<std::byte> bytes = w.take();
  ASSERT_EQ(bytes.size(), 32u);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::byte> truncated(bytes.begin(),
                                     bytes.begin() +
                                         static_cast<long>(cut));
    fleet::WireReader r(truncated);
    EXPECT_THROW((void)fleet::decode_trace_context_from(r), Error)
        << "cut at " << cut;
  }
  // Undefined lengths (anything but 0 and 24), including lengths large
  // enough to overflow a size computation, are rejected up front.
  for (const std::uint64_t bogus :
       {std::uint64_t{1}, std::uint64_t{8}, std::uint64_t{16},
        std::uint64_t{23}, std::uint64_t{25},
        std::numeric_limits<std::uint64_t>::max()}) {
    fleet::WireWriter bad;
    bad.u64(bogus);
    for (int i = 0; i < 24; ++i) bad.u8(0xee);
    const std::vector<std::byte> payload = bad.take();
    fleet::WireReader r(payload);
    EXPECT_THROW((void)fleet::decode_trace_context_from(r), InvalidArgument)
        << "length " << bogus;
  }
}

}  // namespace
}  // namespace netpart

// Randomised end-to-end property tests ("fuzz-lite"): random traffic
// patterns through MMPS and random partition requests through the full
// pipeline must uphold the library invariants for every seed.
#include <gtest/gtest.h>

#include <map>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/partitioner.hpp"
#include "mmps/system.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

class RandomTraffic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTraffic, MmpsDeliversEverythingInOrder) {
  const Network net = presets::paper_testbed();
  sim::Engine engine;
  sim::NetSimParams params;
  params.loss_rate = 0.15;
  params.rto = SimTime::millis(3);
  sim::NetSim netsim(engine, net, params, Rng(GetParam()));
  mmps::System mmps(netsim);
  Rng rng = Rng(GetParam()).stream(1);

  struct Key {
    ProcessorRef src;
    ProcessorRef dst;
    std::int32_t tag;
    auto operator<=>(const Key&) const = default;
  };
  std::map<Key, int> sent_count;
  std::map<Key, int> next_expected;  // sequence encoded in payload size
  int delivered = 0;
  int total = 0;

  const auto random_ref = [&] {
    const auto c = static_cast<ClusterId>(rng.next_int(0, 1));
    const auto i = static_cast<ProcessorIndex>(rng.next_int(0, 5));
    return ProcessorRef{c, i};
  };

  for (int round = 0; round < 120; ++round) {
    const ProcessorRef src = random_ref();
    ProcessorRef dst = random_ref();
    if (src == dst) dst.index = (dst.index + 1) % 6;
    const auto tag = static_cast<std::int32_t>(rng.next_int(0, 3));
    const Key key{src, dst, tag};
    const int seq = sent_count[key]++;
    ++total;
    // Payload size encodes the per-key sequence number.
    mmps.send(src, dst, tag,
              std::vector<std::byte>(static_cast<std::size_t>(seq + 1)));
    mmps.recv(dst, src, tag, [&, key](mmps::Message msg) {
      // Per-key FIFO: sizes arrive in send order.
      EXPECT_EQ(msg.payload.size(),
                static_cast<std::size_t>(next_expected[key] + 1));
      ++next_expected[key];
      ++delivered;
    });
  }
  engine.run();
  EXPECT_EQ(delivered, total);
  EXPECT_EQ(mmps.unclaimed(), 0u);
}

TEST_P(RandomTraffic, PipelineInvariantsOnRandomNetworks) {
  Rng rng(GetParam() * 7919);
  const Network net = presets::random_network(
      rng, 2 + static_cast<int>(GetParam() % 4), 6);
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  Rng size_rng = rng.stream(3);

  for (int trial = 0; trial < 5; ++trial) {
    const int n = static_cast<int>(size_rng.next_int(snap.total(), 4000));
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    CycleEstimator est(net, cal.db, spec);
    const PartitionResult r = partition(est, snap);
    // Invariants: capacity respected, domain covered, positive estimate,
    // placement consistent with the configuration.
    for (ClusterId c = 0; c < net.num_clusters(); ++c) {
      ASSERT_LE(r.config[static_cast<std::size_t>(c)],
                snap.available[static_cast<std::size_t>(c)]);
    }
    ASSERT_EQ(r.estimate.partition.total(), n);
    ASSERT_GT(r.estimate.t_c_ms, 0.0);
    ASSERT_EQ(static_cast<int>(r.placement.size()),
              config_total(r.config));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraffic,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace netpart

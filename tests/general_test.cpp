// Tests for the general (multi-start local search) partitioner.
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/general.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

struct Fixture {
  Network net;
  CalibrationResult cal;
  AvailabilitySnapshot snap;

  explicit Fixture(Network n)
      : net(std::move(n)),
        cal([&] {
          CalibrationParams params;
          params.topologies = {Topology::OneD};
          return calibrate(net, params);
        }()),
        snap(gather_availability(net,
                                 make_managers(net, AvailabilityPolicy{}))) {
  }
};

ComputationSpec stencil(int n) {
  return apps::make_stencil_spec(
      apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
}

TEST(GeneralPartitionerTest, NeverWorseThanLocalityHeuristic) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    Fixture f(presets::random_network(rng, 4, 6));
    const ComputationSpec spec = stencil(900);
    CycleEstimator est(f.net, f.cal.db, spec);
    const PartitionResult heur = partition(est, f.snap);
    const PartitionResult gen = general_partition(est, f.snap);
    EXPECT_LE(gen.estimate.t_c_ms, heur.estimate.t_c_ms + 1e-9)
        << "seed " << seed;
  }
}

TEST(GeneralPartitionerTest, MatchesExhaustiveOnSmallNetworks) {
  int matched = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    Fixture f(presets::random_network(rng, 3, 5));
    const ComputationSpec spec = stencil(1200);
    CycleEstimator est(f.net, f.cal.db, spec);
    const PartitionResult gen = general_partition(est, f.snap);
    const PartitionResult exh = exhaustive_partition(est, f.snap);
    EXPECT_GE(gen.estimate.t_c_ms, exh.estimate.t_c_ms - 1e-9);
    if (gen.estimate.t_c_ms <= exh.estimate.t_c_ms * 1.001) ++matched;
  }
  // Local search with diverse starts should find the optimum nearly
  // always on these small instances.
  EXPECT_GE(matched, 7);
}

TEST(GeneralPartitionerTest, PolynomialCostOnLargeNetworks) {
  // On a 6-cluster network the exhaustive space has prod(N_i + 1)
  // configurations (tens of thousands); the multi-start search stays in
  // the hundreds.  (On tiny spaces exhaustive is cheaper -- the general
  // search exists for the spaces where it is not.)
  Rng rng(11);
  Fixture f(presets::random_network(rng, 6, 8));
  const ComputationSpec spec = stencil(2400);
  CycleEstimator est(f.net, f.cal.db, spec);
  std::uint64_t space = 1;
  for (int n : f.snap.available) {
    space *= static_cast<std::uint64_t>(n + 1);
  }
  ASSERT_GT(space, 10000u);
  const PartitionResult gen = general_partition(est, f.snap);
  EXPECT_LT(gen.evaluations, space / 10);
  EXPECT_LT(gen.evaluations, 2000u);
}

TEST(GeneralPartitionerTest, AgreesWithHeuristicOnPaperTestbed) {
  Fixture f(presets::paper_testbed());
  for (const int n : {60, 300, 1200}) {
    const ComputationSpec spec = stencil(n);
    CycleEstimator est(f.net, f.cal.db, spec);
    const PartitionResult gen = general_partition(est, f.snap);
    const PartitionResult exh = exhaustive_partition(est, f.snap);
    EXPECT_NEAR(gen.estimate.t_c_ms, exh.estimate.t_c_ms,
                1e-9 + 0.001 * exh.estimate.t_c_ms)
        << "N=" << n;
  }
}

TEST(GeneralPartitionerTest, DeterministicForFixedSeed) {
  Fixture f(presets::fig1_network());
  const ComputationSpec spec = stencil(600);
  CycleEstimator est(f.net, f.cal.db, spec);
  GeneralPartitionOptions options;
  options.seed = 42;
  const PartitionResult a = general_partition(est, f.snap, options);
  const PartitionResult b = general_partition(est, f.snap, options);
  EXPECT_EQ(a.config, b.config);
}

TEST(GeneralPartitionerTest, RespectsAvailability) {
  Fixture f(presets::paper_testbed());
  const ComputationSpec spec = stencil(1200);
  CycleEstimator est(f.net, f.cal.db, spec);
  AvailabilitySnapshot snap;
  snap.available = {3, 2};
  const PartitionResult r = general_partition(est, snap);
  EXPECT_LE(r.config[0], 3);
  EXPECT_LE(r.config[1], 2);
  AvailabilitySnapshot none;
  none.available = {0, 0};
  EXPECT_THROW(general_partition(est, none), InvalidArgument);
}

}  // namespace
}  // namespace netpart

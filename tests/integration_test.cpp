// Cross-module integration tests: the full calibrate -> annotate ->
// partition -> execute pipeline, on several networks, with the paper's
// headline property checked end to end -- the predicted configuration's
// measured time is (near-)minimal among the alternatives.
#include <gtest/gtest.h>

#include "apps/gauss.hpp"
#include "apps/particles.hpp"
#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/decompose.hpp"
#include "core/partitioner.hpp"
#include "exec/executor.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

struct Pipeline {
  Network net;
  CalibrationResult cal;
  AvailabilitySnapshot snap;

  explicit Pipeline(Network network,
                    std::vector<Topology> topologies = {Topology::OneD})
      : net(std::move(network)),
        cal([&] {
          CalibrationParams params;
          params.topologies = std::move(topologies);
          return calibrate(net, params);
        }()),
        snap(gather_availability(net,
                                 make_managers(net, AvailabilityPolicy{}))) {
  }
};

double measure(const Pipeline& pl, const ComputationSpec& spec,
               const ProcessorConfig& config) {
  const Placement placement = contiguous_placement(pl.net, config);
  const PartitionVector part = balanced_partition(
      pl.net, config, clusters_by_speed(pl.net), spec.num_pdus());
  return execute(pl.net, spec, placement, part, {}).elapsed.as_millis();
}

TEST(IntegrationTest, PredictionIsNearMeasuredMinimumOnTestbed) {
  Pipeline pl(presets::paper_testbed());
  for (const bool overlap : {false, true}) {
    for (const std::int64_t n : {60, 300, 600, 1200}) {
      const ComputationSpec spec = apps::make_stencil_spec(
          apps::StencilConfig{.n = static_cast<int>(n),
                              .iterations = 10,
                              .overlap = overlap});
      CycleEstimator est(pl.net, pl.cal.db, spec);
      const PartitionResult predicted = partition(est, pl.snap);
      const double t_predicted = measure(pl, spec, predicted.config);

      // Sweep all configurations along the fill order.
      double best = t_predicted;
      for (int p = 1; p <= 12; ++p) {
        const ProcessorConfig config{std::min(p, 6), std::max(0, p - 6)};
        best = std::min(best, measure(pl, spec, config));
      }
      // The paper's claim, with a 12% tolerance for the knife-edge ties
      // its own tables exhibit (see EXPERIMENTS.md).
      EXPECT_LE(t_predicted, 1.12 * best)
          << "overlap=" << overlap << " N=" << n;
    }
  }
}

TEST(IntegrationTest, PipelineWorksOnThreeClusterNetwork) {
  Pipeline pl(presets::fig1_network());
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(pl.net, pl.cal.db, spec);
  const PartitionResult r = partition(est, pl.snap);
  EXPECT_GT(config_total(r.config), 0);
  // rs6000 is the fastest cluster: it must be used first and fully
  // whenever any other cluster is used.
  if (r.config[0] > 0 || r.config[1] > 0) {
    EXPECT_EQ(r.config[2], pl.net.cluster(2).size());
  }
  const double measured = measure(pl, spec, r.config);
  EXPECT_GT(measured, 0.0);
}

TEST(IntegrationTest, PipelineWorksWithCoercion) {
  Pipeline pl(presets::coercion_testbed());
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 900, .iterations = 10, .overlap = false});
  CycleEstimator est(pl.net, pl.cal.db, spec);
  const PartitionResult r = partition(est, pl.snap);
  const ExecutionResult run =
      execute(pl.net, spec, r.placement, r.estimate.partition, {});
  EXPECT_GT(run.elapsed.as_millis(), 0.0);
}

TEST(IntegrationTest, AnnotationExecutorAgreesWithFunctionalRun) {
  // The annotation-level executor and the real-data MMPS implementation
  // must report the same simulated elapsed time: they model the same
  // program on the same network.
  const Network net = presets::paper_testbed();
  for (const bool overlap : {false, true}) {
    const apps::StencilConfig cfg{.n = 120, .iterations = 10,
                                  .overlap = overlap};
    const ComputationSpec spec = apps::make_stencil_spec(cfg);
    const ProcessorConfig config{4, 2};
    const Placement placement = contiguous_placement(net, config);
    const PartitionVector part = balanced_partition(
        net, config, clusters_by_speed(net), cfg.n);
    const double annotated =
        execute(net, spec, placement, part, {}).elapsed.as_millis();
    const double functional =
        apps::run_distributed_stencil(net, placement, part, cfg)
            .elapsed.as_millis();
    EXPECT_NEAR(annotated, functional, 0.12 * annotated)
        << "overlap=" << overlap;
  }
}

TEST(IntegrationTest, AvailabilityRestrictsThePartitioner) {
  Network net = presets::paper_testbed();
  // Load up four Sparc2s: only two remain available.
  for (int i = 0; i < 4; ++i) {
    net.cluster(0).processor(i).load = 0.9;
  }
  Pipeline pl(std::move(net));
  EXPECT_EQ(pl.snap.available[0], 2);
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(pl.net, pl.cal.db, spec);
  const PartitionResult r = partition(est, pl.snap);
  EXPECT_LE(r.config[0], 2);
  EXPECT_GT(r.config[1], 0) << "with Sparc2s scarce the IPCs must help";
}

TEST(IntegrationTest, GaussAndParticlesPartitionAndRun) {
  Pipeline pl(presets::paper_testbed(),
              {Topology::OneD, Topology::Broadcast});
  {
    const ComputationSpec spec =
        apps::make_gauss_spec(apps::GaussConfig{.n = 96});
    CycleEstimator est(pl.net, pl.cal.db, spec);
    const PartitionResult r = partition(est, pl.snap);
    const ExecutionResult run =
        execute(pl.net, spec, r.placement, r.estimate.partition, {});
    EXPECT_GT(run.elapsed.as_millis(), 0.0);
  }
  {
    const ComputationSpec spec = apps::make_particle_spec(
        apps::ParticleConfig{.count = 5000, .iterations = 10});
    CycleEstimator est(pl.net, pl.cal.db, spec);
    const PartitionResult r = partition(est, pl.snap);
    const ExecutionResult run =
        execute(pl.net, spec, r.placement, r.estimate.partition, {});
    EXPECT_GT(run.elapsed.as_millis(), 0.0);
  }
}

}  // namespace
}  // namespace netpart

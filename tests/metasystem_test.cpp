// Tests for the metasystem extension (relaxed assumption 1) and the
// messaged availability protocol.
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/decompose.hpp"
#include "core/partitioner.hpp"
#include "exec/executor.hpp"
#include "mmps/manager_protocol.hpp"
#include "net/builder.hpp"
#include "net/presets.hpp"
#include "util/error.hpp"

namespace netpart {
namespace {

TEST(MetasystemTest, UnequalBandwidthRequiresRelaxation) {
  NetworkBuilder strict;
  strict.add_cluster_on("fast-net", presets::sparc2(), 4, 100e6,
                        SimTime::micros(10));
  strict.add_cluster("slow-net", presets::sun_ipc(), 4);
  EXPECT_THROW(strict.build(), InvalidArgument);

  NetworkBuilder relaxed;
  relaxed.relax_equal_bandwidth();
  relaxed.add_cluster_on("fast-net", presets::sparc2(), 4, 100e6,
                         SimTime::micros(10));
  relaxed.add_cluster("slow-net", presets::sun_ipc(), 4);
  const Network net = relaxed.build();
  EXPECT_DOUBLE_EQ(net.segment(0).bandwidth_bps, 100e6);
  EXPECT_DOUBLE_EQ(net.segment(1).bandwidth_bps, 10e6);
}

TEST(MetasystemTest, PresetIsValidAndFast) {
  const Network net = presets::metasystem();
  EXPECT_EQ(net.num_clusters(), 3);
  EXPECT_EQ(net.cluster_by_name("multicomputer").size(), 8);
  // The multicomputer's segment runs at 80 Mbit/s.
  EXPECT_DOUBLE_EQ(
      net.segment(net.cluster_by_name("multicomputer").segment())
          .bandwidth_bps,
      80e6);
}

TEST(MetasystemTest, CalibrationSeesTheFasterFabric) {
  const Network net = presets::metasystem();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  // Per-byte slope on the multicomputer fabric is far below ethernet's.
  EXPECT_LT(cal.db.comm_fit(0, Topology::OneD).c4,
            0.3 * cal.db.comm_fit(1, Topology::OneD).c4);
}

TEST(MetasystemTest, PartitionerSaturatesMulticomputerFirst) {
  const Network net = presets::metasystem();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 4800, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  const PartitionResult r = partition(est, snap);
  EXPECT_EQ(r.config[0], 8) << "multicomputer must be fully used first";
}

TEST(AvailabilityProtocolTest, MatchesDirectGather) {
  Network net = presets::fig1_network();
  net.cluster(0).processor(2).load = 0.8;
  net.cluster(1).processor(0).load = 0.5;
  const auto managers = make_managers(net, AvailabilityPolicy{});
  const AvailabilitySnapshot direct = gather_availability(net, managers);

  sim::Engine engine;
  sim::NetSim sim(engine, net, sim::NetSimParams{}, Rng(4));
  const mmps::ProtocolResult result =
      mmps::run_availability_protocol(sim, managers);
  EXPECT_EQ(result.snapshot.available, direct.available);
  // Ring (k-1) + result (1) + broadcast (k-1) messages for k clusters.
  EXPECT_EQ(result.messages, 2u * 3u - 1u);
  EXPECT_GT(result.elapsed, SimTime::zero());
}

TEST(AvailabilityProtocolTest, OverheadSmallVersusComputation) {
  // The paper: "There is additional overhead required to determine the
  // available processors within each cluster but it is also small
  // relative to elapsed time."
  const Network net = presets::paper_testbed();
  const auto managers = make_managers(net, AvailabilityPolicy{});
  sim::Engine engine;
  sim::NetSim sim(engine, net, sim::NetSimParams{}, Rng(4));
  const mmps::ProtocolResult result =
      mmps::run_availability_protocol(sim, managers);
  // Stencil elapsed times are hundreds to thousands of ms.
  EXPECT_LT(result.elapsed.as_millis(), 20.0);
}

TEST(AvailabilityProtocolTest, SingleClusterNeedsNoMessages) {
  NetworkBuilder b;
  b.add_cluster("only", presets::sparc2(), 4);
  const Network net = b.build();
  const auto managers = make_managers(net, AvailabilityPolicy{});
  sim::Engine engine;
  sim::NetSim sim(engine, net, sim::NetSimParams{}, Rng(4));
  const mmps::ProtocolResult result =
      mmps::run_availability_protocol(sim, managers);
  EXPECT_EQ(result.messages, 0u);
  EXPECT_EQ(result.snapshot.available[0], 4);
}

TEST(ExecutorInstrumentationTest, IterationSeriesAndUtilisation) {
  const Network net = presets::paper_testbed();
  const apps::StencilConfig cfg{.n = 300, .iterations = 10,
                                .overlap = false};
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  const ProcessorConfig config{6, 0};
  const Placement placement = contiguous_placement(net, config);
  const PartitionVector part =
      balanced_partition(net, config, clusters_by_speed(net), cfg.n);
  const ExecutionResult r = execute(net, spec, placement, part, {});

  ASSERT_EQ(r.iteration_finish.size(), 10u);
  // Monotone, ending at the elapsed time.
  for (std::size_t i = 1; i < r.iteration_finish.size(); ++i) {
    EXPECT_GT(r.iteration_finish[i], r.iteration_finish[i - 1]);
  }
  EXPECT_EQ(r.iteration_finish.back(), r.elapsed);
  // Steady state: later cycle times within 25% of each other.
  const double c5 = (r.iteration_finish[5] - r.iteration_finish[4])
                        .as_millis();
  const double c9 = (r.iteration_finish[9] - r.iteration_finish[8])
                        .as_millis();
  EXPECT_NEAR(c5, c9, 0.25 * c5);

  ASSERT_EQ(r.segment_busy.size(), 2u);
  // Only the Sparc2 segment carries traffic; N=300 on 6 processors is
  // channel-bound there (utilisation near 1).
  EXPECT_EQ(r.segment_busy[1], SimTime::zero());
  EXPECT_GT(r.segment_busy[0].as_millis(), 0.6 * r.elapsed.as_millis());
  EXPECT_LE(r.segment_busy[0], r.elapsed);
}

}  // namespace
}  // namespace netpart

// Tests for the MMPS message layer: coercion round trips, tag matching,
// ordering, and reliability on top of the simulated network.
#include <gtest/gtest.h>

#include <limits>

#include "mmps/coercion.hpp"
#include "mmps/system.hpp"
#include "net/presets.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "util/error.hpp"

namespace netpart::mmps {
namespace {

// ---------------------------------------------------------------- coercion

template <typename T>
class CoercionRoundTrip : public ::testing::Test {};

using ScalarTypes = ::testing::Types<float, double, std::int32_t,
                                     std::int64_t, std::uint16_t>;
TYPED_TEST_SUITE(CoercionRoundTrip, ScalarTypes);

TYPED_TEST(CoercionRoundTrip, EncodeDecodeIsIdentity) {
  using T = TypeParam;
  std::vector<T> values;
  values.push_back(T{0});
  values.push_back(T{1});
  values.push_back(std::numeric_limits<T>::max());
  values.push_back(std::numeric_limits<T>::lowest());
  if constexpr (std::is_floating_point_v<T>) {
    values.push_back(static_cast<T>(-3.14159));
    values.push_back(std::numeric_limits<T>::denorm_min());
  }
  const auto bytes = encode_array(std::span<const T>(values));
  EXPECT_EQ(bytes.size(), values.size() * sizeof(T));
  const auto decoded = decode_array<T>(bytes);
  EXPECT_EQ(decoded, values);
}

TEST(CoercionTest, ByteswapIsInvolution) {
  EXPECT_EQ(byteswap_value(byteswap_value(0x12345678)), 0x12345678);
  EXPECT_EQ(byteswap_value(std::uint16_t{0x1234}), 0x3412);
  const double v = 2.718281828;
  EXPECT_EQ(byteswap_value(byteswap_value(v)), v);
}

TEST(CoercionTest, NetworkOrderIsBigEndian) {
  const std::vector<std::uint32_t> one = {1};
  const auto bytes = encode_array(std::span<const std::uint32_t>(one));
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(bytes[0]), 0);
  EXPECT_EQ(std::to_integer<int>(bytes[3]), 1);
}

TEST(CoercionTest, RejectsMisalignedPayload) {
  const std::vector<std::byte> bytes(7);
  EXPECT_THROW(decode_array<std::uint32_t>(bytes), InvalidArgument);
}

// ------------------------------------------------------------------ system

class MmpsSystemTest : public ::testing::Test {
 protected:
  Network net_ = presets::paper_testbed();
  sim::Engine engine_;
  sim::NetSim sim_{engine_, net_, sim::NetSimParams{}, Rng(8)};
  System mmps_{sim_};
  const ProcessorRef a_{0, 0};
  const ProcessorRef b_{0, 1};
  const ProcessorRef c_{1, 0};
};

TEST_F(MmpsSystemTest, PayloadSurvivesTransit) {
  const std::vector<double> data = {1.5, -2.5, 1e300};
  mmps_.send(a_, b_, /*tag=*/7,
             encode_array(std::span<const double>(data)));
  std::vector<double> received;
  mmps_.recv(b_, a_, 7, [&](Message msg) {
    received = decode_array<double>(msg.payload);
    EXPECT_EQ(msg.tag, 7);
    EXPECT_EQ(msg.source, (ProcessorRef{0, 0}));
  });
  engine_.run();
  EXPECT_EQ(received, data);
  EXPECT_EQ(mmps_.unclaimed(), 0u);
}

TEST_F(MmpsSystemTest, RecvBeforeSendWorks) {
  bool got = false;
  mmps_.recv(b_, a_, 1, [&](Message) { got = true; });
  mmps_.send(a_, b_, 1, std::vector<std::byte>(64));
  engine_.run();
  EXPECT_TRUE(got);
}

TEST_F(MmpsSystemTest, TagsAndSourcesDoNotCrossMatch) {
  int tag1 = 0;
  int tag2 = 0;
  mmps_.send(a_, b_, 1, std::vector<std::byte>(8));
  mmps_.send(a_, b_, 2, std::vector<std::byte>(16));
  mmps_.send(c_, b_, 1, std::vector<std::byte>(24));
  mmps_.recv(b_, a_, 2, [&](Message msg) {
    tag2 = static_cast<int>(msg.payload.size());
  });
  mmps_.recv(b_, c_, 1, [&](Message msg) {
    tag1 = static_cast<int>(msg.payload.size());
  });
  engine_.run();
  EXPECT_EQ(tag2, 16);
  EXPECT_EQ(tag1, 24);
  EXPECT_EQ(mmps_.unclaimed(), 1u);  // the (a_, tag 1) message waits
}

TEST_F(MmpsSystemTest, SameKeyDeliveredInOrder) {
  for (int i = 0; i < 4; ++i) {
    mmps_.send(a_, b_, 5, std::vector<std::byte>(
                              static_cast<std::size_t>(i + 1)));
  }
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 4; ++i) {
    mmps_.recv(b_, a_, 5,
               [&](Message msg) { sizes.push_back(msg.payload.size()); });
  }
  engine_.run();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST_F(MmpsSystemTest, ReliableUnderLoss) {
  sim::Engine engine;
  sim::NetSimParams params;
  params.loss_rate = 0.3;
  params.rto = SimTime::millis(5);
  sim::NetSim lossy(engine, net_, params, Rng(77));
  System mmps(lossy);
  int delivered = 0;
  for (int i = 0; i < 30; ++i) {
    mmps.send(a_, c_, i, std::vector<std::byte>(5000));
    mmps.recv(c_, a_, i, [&](Message msg) {
      EXPECT_EQ(msg.payload.size(), 5000u);
      ++delivered;
    });
  }
  engine.run();
  EXPECT_EQ(delivered, 30);
  EXPECT_GT(lossy.retransmissions(), 0u);
}

TEST_F(MmpsSystemTest, RejectsNullHandler) {
  EXPECT_THROW(mmps_.recv(b_, a_, 0, nullptr), InvalidArgument);
}

TEST_F(MmpsSystemTest, ResequencesAfterRetransmission) {
  // Under loss a retransmitted message physically arrives after its
  // successors; MMPS must still deliver per-pair in send order.  High loss
  // plus multi-fragment messages makes reordering on the wire all but
  // certain across 60 messages.
  sim::Engine engine;
  sim::NetSimParams params;
  params.loss_rate = 0.35;
  params.rto = SimTime::millis(20);
  sim::NetSim lossy(engine, net_, params, Rng(1234));
  System mmps(lossy);
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 60; ++i) {
    mmps.send(a_, b_, /*tag=*/0,
              std::vector<std::byte>(static_cast<std::size_t>(3000 + i)));
    mmps.recv(b_, a_, 0,
              [&](Message msg) { sizes.push_back(msg.payload.size()); });
  }
  engine.run();
  ASSERT_GT(lossy.retransmissions(), 0u);
  ASSERT_EQ(sizes.size(), 60u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(sizes[static_cast<std::size_t>(i)],
              static_cast<std::size_t>(3000 + i));
  }
}

// ------------------------------------------------------- timed receives

TEST_F(MmpsSystemTest, RecvWithTimeoutFiresWhenNothingArrives) {
  bool got = false;
  bool timed_out = false;
  mmps_.recv_with_timeout(b_, a_, /*tag=*/5, SimTime::millis(30),
                          [&](Message) { got = true; },
                          [&] { timed_out = true; });
  engine_.run();
  EXPECT_FALSE(got);
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(engine_.now(), SimTime::millis(30));
}

TEST_F(MmpsSystemTest, RecvWithTimeoutDeliversInTimeAndNeverFiresLate) {
  bool got = false;
  bool timed_out = false;
  mmps_.send(a_, b_, /*tag=*/5, std::vector<std::byte>(16));
  mmps_.recv_with_timeout(b_, a_, 5, SimTime::seconds(1),
                          [&](Message) { got = true; },
                          [&] { timed_out = true; });
  engine_.run();  // runs past the timeout event, which must be a no-op
  EXPECT_TRUE(got);
  EXPECT_FALSE(timed_out);
  EXPECT_GE(engine_.now(), SimTime::seconds(1));
}

TEST_F(MmpsSystemTest, RecvWithTimeoutReportsCrashedPeer) {
  // The fix for the blocking-receive-from-a-crashed-host hang: the
  // receiver posts an RTO-style timed receive, the sender is dead, and the
  // receive reports failure instead of parking the engine forever.
  sim::FaultPlan plan;
  plan.crashes.push_back({SimTime::zero(), c_});
  sim::FaultInjector injector(sim_, plan);
  injector.arm();
  engine_.run();  // land the t=0 crash before anything is sent

  bool got = false;
  bool timed_out = false;
  mmps_.send(c_, b_, /*tag=*/3, std::vector<std::byte>(64));  // vanishes
  mmps_.recv_with_timeout(b_, c_, 3, SimTime::millis(100),
                          [&](Message) { got = true; },
                          [&] { timed_out = true; });
  engine_.run();
  EXPECT_FALSE(got);
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(sim_.messages_dropped(), 1u);
}

TEST_F(MmpsSystemTest, TimedOutReceiveDoesNotStealALaterMessage) {
  bool stale = false;
  mmps_.recv_with_timeout(b_, a_, /*tag=*/9, SimTime::millis(10),
                          [&](Message) { stale = true; }, [] {});
  engine_.run();  // expire the timed receive

  mmps_.send(a_, b_, 9, std::vector<std::byte>(32));
  engine_.run();
  EXPECT_FALSE(stale);
  EXPECT_EQ(mmps_.unclaimed(), 1u);

  bool fresh = false;
  mmps_.recv(b_, a_, 9, [&](Message) { fresh = true; });
  EXPECT_TRUE(fresh);
  EXPECT_EQ(mmps_.unclaimed(), 0u);
}

// -------------------------------------------------- any-source receives

TEST_F(MmpsSystemTest, RecvAnyMatchesAnySourceExactTakesPrecedence) {
  mmps_.send(a_, b_, /*tag=*/4, std::vector<std::byte>(8));
  mmps_.send(c_, b_, 4, std::vector<std::byte>(8));

  std::vector<ProcessorRef> any_sources;
  ProcessorRef exact_source{-1, -1};
  mmps_.recv(b_, c_, 4, [&](Message msg) { exact_source = msg.source; });
  mmps_.recv_any(b_, 4, [&](Message msg) {
    any_sources.push_back(msg.source);
  });
  engine_.run();
  EXPECT_EQ(exact_source, c_);
  ASSERT_EQ(any_sources.size(), 1u);
  EXPECT_EQ(any_sources[0], a_);
  EXPECT_EQ(mmps_.unclaimed(), 0u);
}

TEST_F(MmpsSystemTest, RecvAnyServesAlreadyDeliveredMessage) {
  mmps_.send(c_, b_, /*tag=*/6, std::vector<std::byte>(48));
  engine_.run();
  EXPECT_EQ(mmps_.unclaimed(), 1u);
  std::size_t size = 0;
  mmps_.recv_any(b_, 6, [&](Message msg) { size = msg.payload.size(); });
  EXPECT_EQ(size, 48u);
  EXPECT_EQ(mmps_.unclaimed(), 0u);
}

TEST_F(MmpsSystemTest, ResetCancelsReceiversAndDropsState) {
  bool got = false;
  mmps_.recv(b_, a_, /*tag=*/2, [&](Message) { got = true; });
  mmps_.reset();
  mmps_.send(a_, b_, 2, std::vector<std::byte>(16));
  engine_.run();
  EXPECT_FALSE(got);  // the posted receive died with the reset
  EXPECT_EQ(mmps_.unclaimed(), 1u);  // the late message parks unclaimed
}

}  // namespace
}  // namespace netpart::mmps

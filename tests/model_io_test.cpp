// Round-trip and error tests for cost-model persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "calib/calibrate.hpp"
#include "calib/model_io.hpp"
#include "net/presets.hpp"
#include "util/error.hpp"

namespace netpart {
namespace {

CostModelDb sample_db() {
  CostModelDb db(3);
  db.set_comm(0, Topology::OneD, Eq1Fit{-0.9, 1.1, -0.0055, 0.00283, 0.999});
  db.set_comm(2, Topology::Broadcast, Eq1Fit{0.1, 0.5, 0.001, 0.0007, 1.0});
  LineFit router;
  router.slope = 0.0006;
  router.intercept = -0.01;
  router.r2 = 0.98;
  db.set_router(0, 1, router);
  LineFit coerce;
  coerce.slope = 0.00035;
  db.set_coerce(1, 2, coerce);
  return db;
}

TEST(ModelIoTest, RoundTripIsExact) {
  const CostModelDb original = sample_db();
  const CostModelDb loaded = load_cost_model(save_cost_model(original));
  EXPECT_EQ(loaded.num_clusters(), 3);
  ASSERT_TRUE(loaded.has_comm(0, Topology::OneD));
  ASSERT_TRUE(loaded.has_comm(2, Topology::Broadcast));
  EXPECT_FALSE(loaded.has_comm(1, Topology::OneD));
  const Eq1Fit& fit = loaded.comm_fit(0, Topology::OneD);
  // Hex-float serialisation: bit-exact doubles.
  EXPECT_EQ(fit.c1, -0.9);
  EXPECT_EQ(fit.c2, 1.1);
  EXPECT_EQ(fit.c3, -0.0055);
  EXPECT_EQ(fit.c4, 0.00283);
  EXPECT_EQ(loaded.router_fit(0, 1)->slope, 0.0006);
  EXPECT_TRUE(loaded.has_coerce(1, 2));
  EXPECT_FALSE(loaded.has_router(1, 2));
}

TEST(ModelIoTest, CalibratedTestbedRoundTrips) {
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal =
      calibrate(presets::paper_testbed(), params);
  const CostModelDb loaded = load_cost_model(save_cost_model(cal.db));
  for (ClusterId c = 0; c < 2; ++c) {
    EXPECT_EQ(loaded.comm_ms(c, Topology::OneD, 2400, 5),
              cal.db.comm_ms(c, Topology::OneD, 2400, 5));
  }
  EXPECT_EQ(loaded.router_ms(0, 1, 2400), cal.db.router_ms(0, 1, 2400));
}

TEST(ModelIoTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "np_model_io_test.txt")
          .string();
  save_cost_model_file(sample_db(), path);
  const CostModelDb loaded = load_cost_model_file(path);
  EXPECT_TRUE(loaded.has_comm(0, Topology::OneD));
  std::remove(path.c_str());
  EXPECT_THROW(load_cost_model_file(path), ConfigError);
}

TEST(ModelIoTest, CommentsAndBlankLinesIgnored) {
  std::string text = save_cost_model(sample_db());
  text = "# header comment\n\n" + text + "\n# trailing\n";
  EXPECT_NO_THROW(load_cost_model(text));
}

TEST(ModelIoTest, SaveLoadSaveIsIdempotent) {
  const std::string once = save_cost_model(sample_db());
  const std::string twice = save_cost_model(load_cost_model(once));
  EXPECT_EQ(once, twice);
}

TEST(ModelIoTest, TruncatedInputsNeverCrashTheLoader) {
  // Chopping the serialised form at every byte must never crash the
  // loader: each prefix either raises a typed error or parses as a valid
  // (smaller) database.  A cut can survive parsing only by landing at a
  // line boundary or inside the final token of a record in a way that
  // still reads as a number -- either way the result is well-formed.
  const std::string text = save_cost_model(sample_db());
  int rejected = 0;
  for (std::size_t len = 0; len < text.size(); ++len) {
    const std::string prefix = text.substr(0, len);
    try {
      load_cost_model(prefix);
    } catch (const ConfigError&) {
      ++rejected;
    } catch (const InvalidArgument&) {
      ++rejected;
    }
  }
  // Most cuts land mid-record and must be detected.
  EXPECT_GT(rejected, static_cast<int>(text.size()) / 2);
}

TEST(ModelIoTest, DirectedTruncationsRejected) {
  const std::string text = save_cost_model(sample_db());
  // Mid-header cut.
  EXPECT_THROW(load_cost_model(text.substr(0, 10)), ConfigError);
  // A comm record cut down to too few fields.
  EXPECT_THROW(
      load_cost_model("netpart-costmodel 1\nclusters 2\ncomm 0 1-D 0 0\n"),
      ConfigError);
}

TEST(ModelIoTest, CorruptedBytesNeverCrashTheLoader) {
  // Single-character corruption at every position: the loader must either
  // reject the text with a typed error or parse it -- never crash or hang.
  const std::string text = save_cost_model(sample_db());
  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string corrupted = text;
    corrupted[i] = '~';
    try {
      load_cost_model(corrupted);
    } catch (const ConfigError&) {
    } catch (const InvalidArgument&) {
    }
  }
}

TEST(ModelIoTest, CorruptedNumericFieldsRejected) {
  EXPECT_THROW(
      load_cost_model("netpart-costmodel 1\nclusters 2\n"
                      "comm 0 1-D zzz 0 0 0 1\n"),
      ConfigError);
  EXPECT_THROW(
      load_cost_model("netpart-costmodel 1\nclusters 2\n"
                      "router 0 1 0.5 0.1\n"),  // missing r2 field
      ConfigError);
  EXPECT_THROW(
      load_cost_model("netpart-costmodel 1\nclusters x\n"), ConfigError);
}

TEST(ModelIoTest, MalformedInputsRejected) {
  EXPECT_THROW(load_cost_model(""), ConfigError);
  EXPECT_THROW(load_cost_model("wrong-magic 1\nclusters 1\n"), ConfigError);
  EXPECT_THROW(load_cost_model("netpart-costmodel 99\nclusters 1\n"),
               ConfigError);
  EXPECT_THROW(
      load_cost_model("netpart-costmodel 1\nclusters 2\ncomm 0 1-D 1\n"),
      ConfigError);
  EXPECT_THROW(
      load_cost_model("netpart-costmodel 1\nclusters 2\nbogus 0 1\n"),
      ConfigError);
  // Semantically invalid: cluster out of range.
  EXPECT_THROW(
      load_cost_model("netpart-costmodel 1\nclusters 1\n"
                      "comm 5 1-D 0 0 0 0 1\n"),
      InvalidArgument);
}

}  // namespace
}  // namespace netpart

// Round-trip and error tests for cost-model persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "calib/calibrate.hpp"
#include "calib/model_io.hpp"
#include "net/presets.hpp"
#include "util/error.hpp"

namespace netpart {
namespace {

CostModelDb sample_db() {
  CostModelDb db(3);
  db.set_comm(0, Topology::OneD, Eq1Fit{-0.9, 1.1, -0.0055, 0.00283, 0.999});
  db.set_comm(2, Topology::Broadcast, Eq1Fit{0.1, 0.5, 0.001, 0.0007, 1.0});
  LineFit router;
  router.slope = 0.0006;
  router.intercept = -0.01;
  router.r2 = 0.98;
  db.set_router(0, 1, router);
  LineFit coerce;
  coerce.slope = 0.00035;
  db.set_coerce(1, 2, coerce);
  return db;
}

TEST(ModelIoTest, RoundTripIsExact) {
  const CostModelDb original = sample_db();
  const CostModelDb loaded = load_cost_model(save_cost_model(original));
  EXPECT_EQ(loaded.num_clusters(), 3);
  ASSERT_TRUE(loaded.has_comm(0, Topology::OneD));
  ASSERT_TRUE(loaded.has_comm(2, Topology::Broadcast));
  EXPECT_FALSE(loaded.has_comm(1, Topology::OneD));
  const Eq1Fit& fit = loaded.comm_fit(0, Topology::OneD);
  // Hex-float serialisation: bit-exact doubles.
  EXPECT_EQ(fit.c1, -0.9);
  EXPECT_EQ(fit.c2, 1.1);
  EXPECT_EQ(fit.c3, -0.0055);
  EXPECT_EQ(fit.c4, 0.00283);
  EXPECT_EQ(loaded.router_fit(0, 1)->slope, 0.0006);
  EXPECT_TRUE(loaded.has_coerce(1, 2));
  EXPECT_FALSE(loaded.has_router(1, 2));
}

TEST(ModelIoTest, CalibratedTestbedRoundTrips) {
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal =
      calibrate(presets::paper_testbed(), params);
  const CostModelDb loaded = load_cost_model(save_cost_model(cal.db));
  for (ClusterId c = 0; c < 2; ++c) {
    EXPECT_EQ(loaded.comm_ms(c, Topology::OneD, 2400, 5),
              cal.db.comm_ms(c, Topology::OneD, 2400, 5));
  }
  EXPECT_EQ(loaded.router_ms(0, 1, 2400), cal.db.router_ms(0, 1, 2400));
}

TEST(ModelIoTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "np_model_io_test.txt")
          .string();
  save_cost_model_file(sample_db(), path);
  const CostModelDb loaded = load_cost_model_file(path);
  EXPECT_TRUE(loaded.has_comm(0, Topology::OneD));
  std::remove(path.c_str());
  EXPECT_THROW(load_cost_model_file(path), ConfigError);
}

TEST(ModelIoTest, CommentsAndBlankLinesIgnored) {
  std::string text = save_cost_model(sample_db());
  text = "# header comment\n\n" + text + "\n# trailing\n";
  EXPECT_NO_THROW(load_cost_model(text));
}

TEST(ModelIoTest, MalformedInputsRejected) {
  EXPECT_THROW(load_cost_model(""), ConfigError);
  EXPECT_THROW(load_cost_model("wrong-magic 1\nclusters 1\n"), ConfigError);
  EXPECT_THROW(load_cost_model("netpart-costmodel 99\nclusters 1\n"),
               ConfigError);
  EXPECT_THROW(
      load_cost_model("netpart-costmodel 1\nclusters 2\ncomm 0 1-D 1\n"),
      ConfigError);
  EXPECT_THROW(
      load_cost_model("netpart-costmodel 1\nclusters 2\nbogus 0 1\n"),
      ConfigError);
  // Semantically invalid: cluster out of range.
  EXPECT_THROW(
      load_cost_model("netpart-costmodel 1\nclusters 1\n"
                      "comm 5 1-D 0 0 0 0 1\n"),
      InvalidArgument);
}

}  // namespace
}  // namespace netpart

// Unit tests for the network model: structural assumptions, builder,
// cluster managers, availability protocol, presets.
#include <gtest/gtest.h>

#include "net/availability.hpp"
#include "net/builder.hpp"
#include "net/presets.hpp"
#include "util/error.hpp"

namespace netpart {
namespace {

Network two_cluster() {
  NetworkBuilder b;
  b.add_cluster("fast", presets::sparc2(), 4);
  b.add_cluster("slow", presets::sun_ipc(), 3);
  return b.build();
}

TEST(NetworkTest, BuilderProducesValidStructure) {
  const Network net = two_cluster();
  EXPECT_EQ(net.num_clusters(), 2);
  EXPECT_EQ(net.num_segments(), 2);
  EXPECT_EQ(net.total_processors(), 7);
  EXPECT_EQ(net.routers().size(), 1u);
  EXPECT_EQ(net.cluster(0).name(), "fast");
  EXPECT_EQ(net.cluster_by_name("slow").size(), 3);
  EXPECT_THROW(net.cluster_by_name("nope"), InvalidArgument);
}

TEST(NetworkTest, RouterPerPairOfSegments) {
  NetworkBuilder b;
  b.add_cluster("a", presets::sparc2(), 2);
  b.add_cluster("b", presets::sun_ipc(), 2);
  b.add_cluster("c", presets::hp9000(), 2);
  const Network net = b.build();
  EXPECT_EQ(net.routers().size(), 3u);  // 3 choose 2
  EXPECT_TRUE(net.router_between(0, 2).has_value());
  EXPECT_FALSE(net.router_between(1, 1).has_value());
}

TEST(NetworkTest, AssumptionViolationsRejected) {
  // Assumption 1: equal bandwidth.
  {
    std::vector<Cluster> clusters;
    clusters.emplace_back(0, "a", presets::sparc2(), 0, 2);
    clusters.emplace_back(1, "b", presets::sparc2(), 1, 2);
    std::vector<Segment> segments(2);
    segments[0].id = 0;
    segments[0].bandwidth_bps = 10e6;
    segments[1].id = 1;
    segments[1].bandwidth_bps = 100e6;  // FDDI next to ethernet
    std::vector<RouterLink> routers{{0, 1, SimTime::nanos(600),
                                     SimTime::micros(50)}};
    EXPECT_THROW(Network(std::move(clusters), std::move(segments),
                         std::move(routers)),
                 InvalidArgument);
  }
  // Assumption 2: one cluster per segment.
  {
    std::vector<Cluster> clusters;
    clusters.emplace_back(0, "a", presets::sparc2(), 0, 2);
    clusters.emplace_back(1, "b", presets::sun_ipc(), 0, 2);  // same segment
    std::vector<Segment> segments(2);
    segments[0].id = 0;
    segments[1].id = 1;
    std::vector<RouterLink> routers{{0, 1, SimTime::nanos(600),
                                     SimTime::micros(50)}};
    EXPECT_THROW(Network(std::move(clusters), std::move(segments),
                         std::move(routers)),
                 InvalidArgument);
  }
  // Assumption 3: router per pair.
  {
    std::vector<Cluster> clusters;
    clusters.emplace_back(0, "a", presets::sparc2(), 0, 2);
    clusters.emplace_back(1, "b", presets::sun_ipc(), 1, 2);
    std::vector<Segment> segments(2);
    segments[0].id = 0;
    segments[1].id = 1;
    EXPECT_THROW(Network(std::move(clusters), std::move(segments), {}),
                 InvalidArgument);
  }
}

TEST(NetworkTest, CoercionOnlyAcrossFormats) {
  const Network net = presets::coercion_testbed();
  EXPECT_TRUE(net.needs_coercion(0, 1));
  EXPECT_FALSE(net.needs_coercion(0, 0));
  const Network same = presets::paper_testbed();
  EXPECT_FALSE(same.needs_coercion(0, 1));
}

TEST(NetworkTest, DescribeMentionsEveryCluster) {
  const std::string desc = presets::fig1_network().describe();
  EXPECT_NE(desc.find("sun4"), std::string::npos);
  EXPECT_NE(desc.find("hp"), std::string::npos);
  EXPECT_NE(desc.find("rs6000"), std::string::npos);
}

TEST(ClusterTest, ValidatesArguments) {
  EXPECT_THROW(Cluster(0, "x", presets::sparc2(), 0, 0), InvalidArgument);
  ProcessorType broken = presets::sparc2();
  broken.flop_time = SimTime::zero();
  EXPECT_THROW(Cluster(0, "x", broken, 0, 2), InvalidArgument);
  const Network net = two_cluster();
  EXPECT_THROW(net.cluster(0).processor(99), InvalidArgument);
}

TEST(AvailabilityTest, ThresholdPolicyCounts) {
  Network net = two_cluster();
  net.cluster(0).processor(0).load = 0.5;   // busy
  net.cluster(0).processor(1).load = 0.09;  // just under the threshold
  net.cluster(0).processor(2).load = 0.10;  // at threshold -> unavailable
  const auto managers = make_managers(net, AvailabilityPolicy{0.10});
  const AvailabilitySnapshot snap = gather_availability(net, managers);
  EXPECT_EQ(snap.available[0], 2);  // processors 1 and 3
  EXPECT_EQ(snap.available[1], 3);
  EXPECT_EQ(snap.total(), 5);

  const auto indices = managers[0].available_indices(net);
  ASSERT_EQ(indices.size(), 2u);
  EXPECT_EQ(indices[0], 1);
  EXPECT_EQ(indices[1], 3);
}

TEST(AvailabilityTest, RandomLoadIsBoundedAndSeeded) {
  Network a = two_cluster();
  Network b = two_cluster();
  Rng ra(21);
  Rng rb(21);
  apply_random_load(a, ra, 0.2);
  apply_random_load(b, rb, 0.2);
  for (ClusterId c = 0; c < a.num_clusters(); ++c) {
    for (ProcessorIndex i = 0; i < a.cluster(c).size(); ++i) {
      const double load = a.cluster(c).processor(i).load;
      EXPECT_GE(load, 0.0);
      EXPECT_LE(load, 1.0);
      EXPECT_EQ(load, b.cluster(c).processor(i).load);
    }
  }
}

TEST(PresetsTest, PaperTestbedMatchesSection6) {
  const Network net = presets::paper_testbed();
  EXPECT_EQ(net.cluster(0).size(), 6);
  EXPECT_EQ(net.cluster(1).size(), 6);
  EXPECT_DOUBLE_EQ(net.cluster(0).type().flop_time.as_micros(), 0.3);
  EXPECT_DOUBLE_EQ(net.cluster(1).type().flop_time.as_micros(), 0.6);
  EXPECT_DOUBLE_EQ(net.segment(0).bandwidth_bps, 10e6);
  // Router: the paper's 0.0006 ms/byte.
  EXPECT_EQ(net.routers()[0].delay_per_byte.as_nanos(), 600);
}

TEST(PresetsTest, RandomNetworkIsValidAndSeeded) {
  Rng r1(5);
  Rng r2(5);
  const Network a = presets::random_network(r1, 5, 8);
  const Network b = presets::random_network(r2, 5, 8);
  EXPECT_EQ(a.num_clusters(), 5);
  for (ClusterId c = 0; c < a.num_clusters(); ++c) {
    EXPECT_EQ(a.cluster(c).size(), b.cluster(c).size());
    EXPECT_GE(a.cluster(c).size(), 2);
    EXPECT_LE(a.cluster(c).size(), 8);
  }
}

}  // namespace
}  // namespace netpart

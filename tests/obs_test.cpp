// Tests for the unified telemetry layer (src/obs/): counters, snapshots,
// RAII spans on both clocks, the Chrome-trace exporter (round-tripped
// through the util/json parser), the sim TraceLog bridge, and the
// determinism of the text export.  ObsThreadedTest matches the tsan test
// preset's filter, so its concurrency cases also run under TSan.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/estimator.hpp"
#include "core/partitioner.hpp"
#include "net/availability.hpp"
#include "net/presets.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/sim_bridge.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "sim/trace.hpp"
#include "util/json.hpp"

namespace netpart {
namespace {

using obs::Span;
using obs::TelemetryRegistry;

// ------------------------------------------------------------- metrics

TEST(ObsMetricsTest, CounterFindOrCreateAndAdd) {
  TelemetryRegistry reg;
  obs::Counter& c = reg.counter("x");
  c.add();
  c.add(4);
  EXPECT_EQ(reg.counter("x").value(), 5u);
  EXPECT_EQ(&reg.counter("x"), &c);
  EXPECT_EQ(reg.counter("y").value(), 0u);
}

TEST(ObsMetricsTest, SnapshotDeltaKeepsOnlyChanges) {
  TelemetryRegistry reg;
  reg.counter("stable").add(10);
  reg.counter("moving").add(1);
  reg.latency("lat", 0.0, 100.0, 10).record(5.0);
  const obs::MetricsSnapshot before = reg.snapshot();
  reg.counter("moving").add(2);
  reg.counter("fresh").add(7);
  reg.latency("lat", 0.0, 100.0, 10).record(6.0);
  const obs::MetricsSnapshot delta =
      obs::snapshot_delta(before, reg.snapshot());

  EXPECT_EQ(delta.counters.size(), 2u);
  EXPECT_EQ(delta.counters.at("moving"), 2u);
  EXPECT_EQ(delta.counters.at("fresh"), 7u);
  EXPECT_EQ(delta.counters.count("stable"), 0u);
  EXPECT_EQ(delta.latency_counts.at("lat"), 1u);
}

TEST(ObsMetricsTest, SnapshotTextIsNameOrdered) {
  obs::MetricsSnapshot snap;
  snap.counters["b"] = 2;
  snap.counters["a"] = 1;
  snap.latency_counts["z"] = 3;
  EXPECT_EQ(obs::snapshot_text(snap),
            "counter a 1\ncounter b 2\nlatency z count 3\n");
}

TEST(ObsMetricsTest, MetricsTextCoversCountersAndHistograms) {
  TelemetryRegistry reg;
  reg.counter("requests").add(3);
  reg.latency("rtt", 0.0, 1000.0, 100).record(10.0);
  const std::string text = reg.metrics_text();
  EXPECT_NE(text.find("counter requests 3"), std::string::npos);
  EXPECT_NE(text.find("latency rtt"), std::string::npos);
}

// --------------------------------------------------------------- spans

TEST(ObsSpanTest, NestingTracksDepthAndRecordsLifo) {
  TelemetryRegistry reg;
  EXPECT_EQ(Span::depth(), 0);
  {
    Span outer(reg, "outer");
    EXPECT_EQ(Span::depth(), 1);
    {
      Span inner(reg, "inner");
      EXPECT_EQ(Span::depth(), 2);
    }
    EXPECT_EQ(Span::depth(), 1);
  }
  EXPECT_EQ(Span::depth(), 0);

  const std::vector<obs::SpanRecord> spans = reg.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");  // innermost ends first
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_GE(spans[1].dur_us, spans[0].dur_us);
}

TEST(ObsSpanTest, SimClockSpanUsesExplicitTimes) {
  TelemetryRegistry reg;
  {
    Span span(reg, "chunk", SimTime::millis(10), "exec");
    span.attr("k", JsonValue(1));
    span.end_at(SimTime::millis(35));
  }
  const std::vector<obs::SpanRecord> spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].sim_clock);
  EXPECT_DOUBLE_EQ(spans[0].start_us, 10000.0);
  EXPECT_DOUBLE_EQ(spans[0].dur_us, 25000.0);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "k");
}

TEST(ObsSpanTest, SimClockSpanWithoutEndAtRecordsZeroDuration) {
  TelemetryRegistry reg;
  { Span span(reg, "abandoned", SimTime::millis(5)); }
  const std::vector<obs::SpanRecord> spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].dur_us, 0.0);
}

TEST(ObsSpanTest, EndIsIdempotent) {
  TelemetryRegistry reg;
  Span span(reg, "once");
  span.end();
  span.end();
  EXPECT_EQ(reg.span_count(), 1u);
  EXPECT_EQ(Span::depth(), 0);
}

TEST(ObsSpanTest, DisabledRegistryRecordsNothing) {
  TelemetryRegistry reg(/*enabled=*/false);
  {
    Span span(reg, "ghost");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(Span::depth(), 0);  // disabled spans never join the stack
    span.attr("k", JsonValue(1));
  }
  EXPECT_EQ(reg.span_count(), 0u);
  // Counters stay live regardless: they are always-on metering.
  reg.counter("still_counts").add(2);
  EXPECT_EQ(reg.counter("still_counts").value(), 2u);
}

TEST(ObsSpanTest, EnabledIsSampledAtConstruction) {
  TelemetryRegistry reg(/*enabled=*/false);
  reg.set_enabled(true);
  {
    Span span(reg, "now_on");
    EXPECT_TRUE(span.active());
    reg.set_enabled(false);  // flipping mid-span must not lose the record
  }
  EXPECT_EQ(reg.span_count(), 1u);
}

TEST(ObsSpanTest, RecordCapacityDropsAndCounts) {
  TelemetryRegistry reg;
  reg.set_record_capacity(3);
  for (int i = 0; i < 5; ++i) {
    Span span(reg, "s");
  }
  EXPECT_EQ(reg.span_count(), 3u);
  EXPECT_EQ(reg.dropped_records(), 2u);
}

// -------------------------------------------------------- chrome trace

TEST(ObsChromeTraceTest, RoundTripsThroughJsonParser) {
  TelemetryRegistry reg;
  {
    Span wall(reg, "wall_work", "app");
    wall.attr("n", JsonValue(42));
  }
  {
    Span sim(reg, "sim_work", SimTime::millis(1), "exec");
    sim.end_at(SimTime::millis(2));
  }
  obs::InstantRecord instant;
  instant.name = "fault";
  instant.category = "sim.event";
  instant.sim_clock = true;
  instant.ts_us = 1500.0;
  reg.record_instant(std::move(instant));

  const JsonValue parsed =
      JsonValue::parse(obs::chrome_trace_json(reg).dump(1));
  const JsonValue* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);

  int metadata = 0, complete = 0, instants = 0;
  bool saw_wall = false, saw_sim = false, saw_args = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    if (ph == "X") {
      ++complete;
      const std::string name = e.find("name")->as_string();
      // pid separates the clocks: 1 = wall, 2 = simulated.
      if (name == "wall_work") {
        saw_wall = true;
        EXPECT_EQ(e.find("pid")->as_int(), 1);
        saw_args = e.find("args") != nullptr;
      }
      if (name == "sim_work") {
        saw_sim = true;
        EXPECT_EQ(e.find("pid")->as_int(), 2);
        EXPECT_DOUBLE_EQ(e.find("ts")->as_double(), 1000.0);
        EXPECT_DOUBLE_EQ(e.find("dur")->as_double(), 1000.0);
      }
    }
    if (ph == "i") ++instants;
  }
  EXPECT_EQ(metadata, 2);  // two process_name records
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(instants, 1);
  EXPECT_TRUE(saw_wall);
  EXPECT_TRUE(saw_sim);
  EXPECT_TRUE(saw_args);
}

// ---------------------------------------------------------- sim bridge

TEST(ObsSimBridgeTest, MatchesSendDeliveredPairsIntoSpans) {
  sim::TraceLog log;
  sim::Tracer tracer = log.tracer();
  const ProcessorRef a{0, 0}, b{1, 0};
  tracer({sim::TraceEvent::Kind::SendInitiated, SimTime::millis(1), a, b,
          128});
  tracer({sim::TraceEvent::Kind::FragmentLost, SimTime::millis(2), a, b,
          128});
  tracer({sim::TraceEvent::Kind::Delivered, SimTime::millis(4), a, b, 128});

  TelemetryRegistry reg;
  obs::bridge_trace_log(log, reg, SimTime::millis(100));

  const std::vector<obs::SpanRecord> spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "msg");
  EXPECT_TRUE(spans[0].sim_clock);
  EXPECT_DOUBLE_EQ(spans[0].start_us, 101000.0);  // origin + 1ms
  EXPECT_DOUBLE_EQ(spans[0].dur_us, 3000.0);
  ASSERT_EQ(reg.instants().size(), 1u);
  EXPECT_EQ(reg.instants()[0].name, "lost");
  EXPECT_EQ(reg.counter("sim.messages_delivered").value(), 1u);
  EXPECT_EQ(reg.counter("sim.bytes_delivered").value(), 128u);
  EXPECT_EQ(reg.counter("sim.fragments_lost").value(), 1u);
}

TEST(ObsSimBridgeTest, ToleratesOrphanDeliveriesFromBoundedLogs) {
  sim::TraceLog log(/*capacity=*/1);
  sim::Tracer tracer = log.tracer();
  const ProcessorRef a{0, 0}, b{1, 0};
  tracer({sim::TraceEvent::Kind::SendInitiated, SimTime::millis(1), a, b,
          64});
  tracer({sim::TraceEvent::Kind::Delivered, SimTime::millis(2), a, b, 64});
  EXPECT_EQ(log.dropped_events(), 1u);
  EXPECT_EQ(log.mean_latency(), SimTime::zero());  // orphan skipped

  TelemetryRegistry reg;
  obs::bridge_trace_log(log, reg);
  EXPECT_EQ(reg.span_count(), 0u);  // no matched pair survives the ring
  EXPECT_EQ(reg.counter("sim.trace_dropped_events").value(), 1u);
}

// ------------------------------------------------- deterministic export

TEST(ObsGoldenTest, IdenticalRunsExportByteIdenticalMetrics) {
  // Two identical seeded partitioner runs must meter identically: the
  // name-ordered snapshot-delta text is the golden artifact.  Uses the
  // global registry exactly as the instrumented library does.
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CostModelDb db = calibrate(net, params).db;
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10});

  TelemetryRegistry& global = TelemetryRegistry::global();
  const auto run_once = [&] {
    const obs::MetricsSnapshot before = global.snapshot();
    const CycleEstimator est(net, db, spec);
    (void)partition(est, snap);
    return obs::snapshot_text(obs::snapshot_delta(before, global.snapshot()));
  };

  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("counter partitioner.calls 1"), std::string::npos);
  EXPECT_NE(first.find("counter partitioner.cost_model_evals"),
            std::string::npos);
}

TEST(ObsGoldenTest, ExhaustiveMetersLikeTheHeuristic) {
  // exhaustive_partition must meter through the same counters partition()
  // does, so heuristic-vs-oracle trace comparisons line up, and its span
  // must carry the sweep parameters.
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CostModelDb db = calibrate(net, params).db;
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10});
  const CycleEstimator est(net, db, spec);

  TelemetryRegistry& global = TelemetryRegistry::global();
  const obs::MetricsSnapshot before = global.snapshot();
  const std::size_t spans_before = global.span_count();
  global.set_enabled(true);
  const PartitionResult result =
      exhaustive_partition(est, snap, {.threads = 2});
  global.set_enabled(false);
  const std::string delta =
      obs::snapshot_text(obs::snapshot_delta(before, global.snapshot()));

  EXPECT_NE(delta.find("counter partitioner.calls 1"), std::string::npos);
  EXPECT_NE(delta.find("counter partitioner.cost_model_evals " +
                       std::to_string(result.evaluations)),
            std::string::npos);
  EXPECT_NE(delta.find("counter estimator.evaluations " +
                       std::to_string(result.evaluations)),
            std::string::npos);

  bool found_span = false;
  const auto spans = global.spans();
  for (std::size_t i = spans_before; i < spans.size(); ++i) {
    if (spans[i].name != "partition.exhaustive") continue;
    found_span = true;
    bool has_threads = false, has_evals = false;
    for (const auto& [key, value] : spans[i].attrs) {
      has_threads = has_threads || key == "threads";
      has_evals = has_evals || key == "evaluations";
    }
    EXPECT_TRUE(has_threads);
    EXPECT_TRUE(has_evals);
  }
  EXPECT_TRUE(found_span);
}

// ----------------------------------------------------------- threading

class ObsThreadedTest : public ::testing::Test {};

TEST_F(ObsThreadedTest, ConcurrentCountersSumExactly) {
  TelemetryRegistry reg;
  constexpr int kThreads = 8, kAdds = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg] {
      obs::Counter& c = reg.counter("shared");
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST_F(ObsThreadedTest, ConcurrentSpansAndMetricsAreSafe) {
  TelemetryRegistry reg;
  constexpr int kThreads = 8, kSpans = 200;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg, t] {
      for (int i = 0; i < kSpans; ++i) {
        Span span(reg, "work");
        span.attr("t", JsonValue(t));
        reg.latency("lat", 0.0, 100.0, 10).record(1.0);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(reg.span_count(),
            static_cast<std::size_t>(kThreads) * kSpans);
  // Every span carries the stable id of the thread that recorded it.
  for (const obs::SpanRecord& s : reg.spans()) {
    EXPECT_EQ(s.name, "work");
  }
  EXPECT_EQ(reg.latency("lat", 0.0, 100.0, 10).count(),
            static_cast<std::size_t>(kThreads) * kSpans);
}

}  // namespace
}  // namespace netpart

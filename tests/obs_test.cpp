// Tests for the unified telemetry layer (src/obs/): counters, snapshots,
// RAII spans on both clocks, the Chrome-trace exporter (round-tripped
// through the util/json parser), the sim TraceLog bridge, and the
// determinism of the text export.  ObsThreadedTest matches the tsan test
// preset's filter, so its concurrency cases also run under TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/estimator.hpp"
#include "core/partitioner.hpp"
#include "net/availability.hpp"
#include "net/presets.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/sim_bridge.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "sim/engine.hpp"
#include "sim/netsim.hpp"
#include "sim/trace.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace netpart {
namespace {

using obs::Span;
using obs::TelemetryRegistry;

// ------------------------------------------------------------- metrics

TEST(ObsMetricsTest, CounterFindOrCreateAndAdd) {
  TelemetryRegistry reg;
  obs::Counter& c = reg.counter("x");
  c.add();
  c.add(4);
  EXPECT_EQ(reg.counter("x").value(), 5u);
  EXPECT_EQ(&reg.counter("x"), &c);
  EXPECT_EQ(reg.counter("y").value(), 0u);
}

TEST(ObsMetricsTest, SnapshotDeltaKeepsOnlyChanges) {
  TelemetryRegistry reg;
  reg.counter("stable").add(10);
  reg.counter("moving").add(1);
  reg.latency("lat", 0.0, 100.0, 10).record(5.0);
  const obs::MetricsSnapshot before = reg.snapshot();
  reg.counter("moving").add(2);
  reg.counter("fresh").add(7);
  reg.latency("lat", 0.0, 100.0, 10).record(6.0);
  const obs::MetricsSnapshot delta =
      obs::snapshot_delta(before, reg.snapshot());

  EXPECT_EQ(delta.counters.size(), 2u);
  EXPECT_EQ(delta.counters.at("moving"), 2u);
  EXPECT_EQ(delta.counters.at("fresh"), 7u);
  EXPECT_EQ(delta.counters.count("stable"), 0u);
  EXPECT_EQ(delta.latency_counts.at("lat"), 1u);
}

TEST(ObsMetricsTest, SnapshotTextIsNameOrdered) {
  obs::MetricsSnapshot snap;
  snap.counters["b"] = 2;
  snap.counters["a"] = 1;
  snap.latency_counts["z"] = 3;
  EXPECT_EQ(obs::snapshot_text(snap),
            "counter a 1\ncounter b 2\nlatency z count 3\n");
}

TEST(ObsMetricsTest, MetricsTextCoversCountersAndHistograms) {
  TelemetryRegistry reg;
  reg.counter("requests").add(3);
  reg.latency("rtt", 0.0, 1000.0, 100).record(10.0);
  const std::string text = reg.metrics_text();
  EXPECT_NE(text.find("counter requests 3"), std::string::npos);
  EXPECT_NE(text.find("latency rtt"), std::string::npos);
}

// --------------------------------------------------------------- spans

TEST(ObsSpanTest, NestingTracksDepthAndRecordsLifo) {
  TelemetryRegistry reg;
  EXPECT_EQ(Span::depth(), 0);
  {
    Span outer(reg, "outer");
    EXPECT_EQ(Span::depth(), 1);
    {
      Span inner(reg, "inner");
      EXPECT_EQ(Span::depth(), 2);
    }
    EXPECT_EQ(Span::depth(), 1);
  }
  EXPECT_EQ(Span::depth(), 0);

  const std::vector<obs::SpanRecord> spans = reg.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");  // innermost ends first
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_GE(spans[1].dur_us, spans[0].dur_us);
}

TEST(ObsSpanTest, SimClockSpanUsesExplicitTimes) {
  TelemetryRegistry reg;
  {
    Span span(reg, "chunk", SimTime::millis(10), "exec");
    span.attr("k", JsonValue(1));
    span.end_at(SimTime::millis(35));
  }
  const std::vector<obs::SpanRecord> spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].sim_clock);
  EXPECT_DOUBLE_EQ(spans[0].start_us, 10000.0);
  EXPECT_DOUBLE_EQ(spans[0].dur_us, 25000.0);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "k");
}

TEST(ObsSpanTest, SimClockSpanWithoutEndAtRecordsZeroDuration) {
  TelemetryRegistry reg;
  { Span span(reg, "abandoned", SimTime::millis(5)); }
  const std::vector<obs::SpanRecord> spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].dur_us, 0.0);
}

TEST(ObsSpanTest, EndIsIdempotent) {
  TelemetryRegistry reg;
  Span span(reg, "once");
  span.end();
  span.end();
  EXPECT_EQ(reg.span_count(), 1u);
  EXPECT_EQ(Span::depth(), 0);
}

TEST(ObsSpanTest, DisabledRegistryRecordsNothing) {
  TelemetryRegistry reg(/*enabled=*/false);
  {
    Span span(reg, "ghost");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(Span::depth(), 0);  // disabled spans never join the stack
    span.attr("k", JsonValue(1));
  }
  EXPECT_EQ(reg.span_count(), 0u);
  // Counters stay live regardless: they are always-on metering.
  reg.counter("still_counts").add(2);
  EXPECT_EQ(reg.counter("still_counts").value(), 2u);
}

TEST(ObsSpanTest, EnabledIsSampledAtConstruction) {
  TelemetryRegistry reg(/*enabled=*/false);
  reg.set_enabled(true);
  {
    Span span(reg, "now_on");
    EXPECT_TRUE(span.active());
    reg.set_enabled(false);  // flipping mid-span must not lose the record
  }
  EXPECT_EQ(reg.span_count(), 1u);
}

TEST(ObsSpanTest, RecordCapacityDropsAndCounts) {
  TelemetryRegistry reg;
  reg.set_record_capacity(3);
  for (int i = 0; i < 5; ++i) {
    Span span(reg, "s");
  }
  EXPECT_EQ(reg.span_count(), 3u);
  EXPECT_EQ(reg.dropped_records(), 2u);
}

// -------------------------------------------------------- chrome trace

// ------------------------------------------------------- trace identity

TEST(ObsTraceContextTest, GeneratorIsDeterministicPerSeedAndStream) {
  obs::TraceIdGenerator a(/*seed=*/42, /*stream=*/0);
  obs::TraceIdGenerator b(/*seed=*/42, /*stream=*/0);
  obs::TraceIdGenerator other_stream(/*seed=*/42, /*stream=*/1);
  obs::TraceIdGenerator other_seed(/*seed=*/43, /*stream=*/0);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t id = a.next();
    EXPECT_NE(id, 0u) << "0 is reserved for 'no id'";
    EXPECT_EQ(id, b.next()) << "same seed+stream must replay identically";
    EXPECT_NE(id, other_stream.next());
    EXPECT_NE(id, other_seed.next());
    ids.push_back(id);
  }
  EXPECT_EQ(std::set<std::uint64_t>(ids.begin(), ids.end()).size(),
            ids.size())
      << "ids must not collide within a stream";
  a.reset(42, 0);
  EXPECT_EQ(a.next(), ids[0]) << "reset replays the stream";
}

TEST(ObsTraceContextTest, SpansFormATraceTreeWithinAThread) {
  TelemetryRegistry reg;
  reg.set_trace_seed(7);
  {
    Span outer(reg, "outer");
    EXPECT_TRUE(outer.context().valid());
    {
      Span inner(reg, "inner");
      EXPECT_EQ(inner.context().trace_id, outer.context().trace_id);
      EXPECT_EQ(inner.context().parent_span_id, outer.context().span_id);
    }
  }
  {
    Span next(reg, "next");
    EXPECT_EQ(next.context().parent_span_id, 0u)
        << "a span opened outside any scope starts a fresh root";
  }
  const std::vector<obs::SpanRecord> spans = reg.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
  EXPECT_EQ(spans[0].parent_span_id, spans[1].span_id);
  EXPECT_NE(spans[2].trace_id, spans[1].trace_id)
      << "sibling roots get distinct trace ids";
}

TEST(ObsTraceContextTest, ContextScopeAdoptsARemoteParent) {
  // The cross-thread / cross-node adoption path: a context carried over a
  // queue or the MMPS wire is pushed with ContextScope, and the next span
  // parents under it instead of starting a new trace.
  TelemetryRegistry reg;
  reg.set_trace_seed(7, /*stream=*/3);
  obs::TraceContext carried;
  carried.trace_id = 0xabcdef01;
  carried.span_id = 0x1234;
  {
    obs::ContextScope scope(carried);
    Span child(reg, "adopted");
    EXPECT_EQ(child.context().trace_id, carried.trace_id);
    EXPECT_EQ(child.context().parent_span_id, carried.span_id);
  }
  EXPECT_FALSE(obs::current_context().valid())
      << "the scope must pop on destruction";
  {
    obs::ContextScope scope(obs::TraceContext{});  // invalid: no-op
    EXPECT_FALSE(obs::current_context().valid());
  }
  const std::vector<obs::SpanRecord> spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 0xabcdef01u);
  EXPECT_EQ(spans[0].parent_span_id, 0x1234u);
}

TEST(ObsMetricsTest, DimensionedMetricsTextLabelsEveryRow) {
  TelemetryRegistry reg;
  reg.counter("requests").add(3);
  reg.latency("rtt", 0.0, 1000.0, 100).record(10.0);
  const std::string text = reg.metrics_text("node=2");
  EXPECT_NE(text.find("counter requests{node=2} 3"), std::string::npos);
  EXPECT_NE(text.find("latency rtt{node=2} "), std::string::npos);
  EXPECT_EQ(text.find("counter requests 3"), std::string::npos)
      << "every row carries the label";
  // The plain overload is unchanged (tier-1 tooling greps its format).
  EXPECT_NE(reg.metrics_text().find("counter requests 3"),
            std::string::npos);
}

TEST(ObsChromeTraceTest, RoundTripsThroughJsonParser) {
  TelemetryRegistry reg;
  {
    Span wall(reg, "wall_work", "app");
    wall.attr("n", JsonValue(42));
  }
  {
    Span sim(reg, "sim_work", SimTime::millis(1), "exec");
    sim.end_at(SimTime::millis(2));
  }
  obs::InstantRecord instant;
  instant.name = "fault";
  instant.category = "sim.event";
  instant.sim_clock = true;
  instant.ts_us = 1500.0;
  reg.record_instant(std::move(instant));

  const JsonValue parsed =
      JsonValue::parse(obs::chrome_trace_json(reg).dump(1));
  const JsonValue* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);

  int metadata = 0, complete = 0, instants = 0;
  bool saw_wall = false, saw_sim = false, saw_args = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    if (ph == "X") {
      ++complete;
      const std::string name = e.find("name")->as_string();
      // pid separates the clocks: 1 = wall, 2 = simulated.
      if (name == "wall_work") {
        saw_wall = true;
        EXPECT_EQ(e.find("pid")->as_int(), 1);
        saw_args = e.find("args") != nullptr;
      }
      if (name == "sim_work") {
        saw_sim = true;
        EXPECT_EQ(e.find("pid")->as_int(), 2);
        EXPECT_DOUBLE_EQ(e.find("ts")->as_double(), 1000.0);
        EXPECT_DOUBLE_EQ(e.find("dur")->as_double(), 1000.0);
      }
    }
    if (ph == "i") ++instants;
  }
  EXPECT_EQ(metadata, 2);  // two process_name records
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(instants, 1);
  EXPECT_TRUE(saw_wall);
  EXPECT_TRUE(saw_sim);
  EXPECT_TRUE(saw_args);
}

TEST(ObsChromeTraceTest, SpanArgsCarryTraceIdsAsHexStrings) {
  // JSON doubles cannot hold a u64, so the exporter writes ids as
  // 16-hex-digit strings; 0 (untraced) omits the keys entirely to keep
  // pre-tracing traces byte-stable.
  TelemetryRegistry reg;
  reg.set_trace_seed(5);
  {
    Span outer(reg, "parent", SimTime::millis(1), "t");
    outer.end_at(SimTime::millis(2));
  }
  obs::SpanRecord untraced;
  untraced.name = "untraced";
  untraced.sim_clock = true;
  reg.record_span(untraced);

  EXPECT_EQ(obs::trace_id_hex(0x1f), "000000000000001f");
  const JsonValue parsed =
      JsonValue::parse(obs::chrome_trace_json(reg).dump(1));
  const JsonValue* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_traced = false, saw_untraced = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    if (e.find("ph")->as_string() != "X") continue;
    const JsonValue* args = e.find("args");
    if (e.find("name")->as_string() == "parent") {
      saw_traced = true;
      ASSERT_NE(args, nullptr);
      const JsonValue* trace_id = args->find("trace_id");
      ASSERT_NE(trace_id, nullptr);
      EXPECT_EQ(trace_id->as_string().size(), 16u);
      ASSERT_NE(args->find("span_id"), nullptr);
      EXPECT_EQ(args->find("parent_span_id"), nullptr)
          << "roots omit the parent key";
    } else {
      saw_untraced = true;
      EXPECT_TRUE(args == nullptr || args->find("trace_id") == nullptr);
    }
  }
  EXPECT_TRUE(saw_traced);
  EXPECT_TRUE(saw_untraced);
}

// ---------------------------------------------------------- sim bridge

TEST(ObsSimBridgeTest, MatchesSendDeliveredPairsIntoSpans) {
  sim::TraceLog log;
  sim::Tracer tracer = log.tracer();
  const ProcessorRef a{0, 0}, b{1, 0};
  tracer({sim::TraceEvent::Kind::SendInitiated, SimTime::millis(1), a, b,
          128});
  tracer({sim::TraceEvent::Kind::FragmentLost, SimTime::millis(2), a, b,
          128});
  tracer({sim::TraceEvent::Kind::Delivered, SimTime::millis(4), a, b, 128});

  TelemetryRegistry reg;
  obs::bridge_trace_log(log, reg, SimTime::millis(100));

  const std::vector<obs::SpanRecord> spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "msg");
  EXPECT_TRUE(spans[0].sim_clock);
  EXPECT_DOUBLE_EQ(spans[0].start_us, 101000.0);  // origin + 1ms
  EXPECT_DOUBLE_EQ(spans[0].dur_us, 3000.0);
  ASSERT_EQ(reg.instants().size(), 1u);
  EXPECT_EQ(reg.instants()[0].name, "lost");
  EXPECT_EQ(reg.counter("sim.messages_delivered").value(), 1u);
  EXPECT_EQ(reg.counter("sim.bytes_delivered").value(), 128u);
  EXPECT_EQ(reg.counter("sim.fragments_lost").value(), 1u);
}

TEST(ObsSimBridgeTest, ToleratesOrphanDeliveriesFromBoundedLogs) {
  sim::TraceLog log(/*capacity=*/1);
  sim::Tracer tracer = log.tracer();
  const ProcessorRef a{0, 0}, b{1, 0};
  tracer({sim::TraceEvent::Kind::SendInitiated, SimTime::millis(1), a, b,
          64});
  tracer({sim::TraceEvent::Kind::Delivered, SimTime::millis(2), a, b, 64});
  EXPECT_EQ(log.dropped_events(), 1u);
  EXPECT_EQ(log.mean_latency(), SimTime::zero());  // orphan skipped

  TelemetryRegistry reg;
  obs::bridge_trace_log(log, reg);
  EXPECT_EQ(reg.span_count(), 0u);  // no matched pair survives the ring
  EXPECT_EQ(reg.counter("sim.trace_dropped_events").value(), 1u);
  EXPECT_EQ(reg.counter("obs.trace.dropped").value(), 1u)
      << "the loss rides the telemetry snapshot under its canonical name";
}

TEST(ObsSimBridgeTest, LossBridgesExportSimAndTraceDrops) {
  sim::TraceLog log(/*capacity=*/1);
  sim::Tracer tracer = log.tracer();
  const ProcessorRef a{0, 0}, b{1, 0};
  tracer({sim::TraceEvent::Kind::SendInitiated, SimTime::millis(1), a, b, 8});
  tracer({sim::TraceEvent::Kind::Delivered, SimTime::millis(2), a, b, 8});
  tracer({sim::TraceEvent::Kind::Delivered, SimTime::millis(3), a, b, 8});
  ASSERT_EQ(log.dropped_events(), 2u);

  TelemetryRegistry reg;
  obs::bridge_trace_loss(log, reg);
  EXPECT_EQ(reg.counter("obs.trace.dropped").value(), 2u);

  const Network net = presets::paper_testbed();
  sim::Engine engine;
  sim::NetSim netsim(engine, net, sim::NetSimParams{}, Rng(1));
  obs::bridge_net_loss(netsim, reg);
  EXPECT_EQ(reg.counter("sim.messages_dropped").value(),
            netsim.messages_dropped());
}

// ------------------------------------------------- deterministic export

TEST(ObsGoldenTest, IdenticalRunsExportByteIdenticalMetrics) {
  // Two identical seeded partitioner runs must meter identically: the
  // name-ordered snapshot-delta text is the golden artifact.  Uses the
  // global registry exactly as the instrumented library does.
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CostModelDb db = calibrate(net, params).db;
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10});

  TelemetryRegistry& global = TelemetryRegistry::global();
  const auto run_once = [&] {
    const obs::MetricsSnapshot before = global.snapshot();
    const CycleEstimator est(net, db, spec);
    (void)partition(est, snap);
    return obs::snapshot_text(obs::snapshot_delta(before, global.snapshot()));
  };

  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("counter partitioner.calls 1"), std::string::npos);
  EXPECT_NE(first.find("counter partitioner.cost_model_evals"),
            std::string::npos);
}

TEST(ObsGoldenTest, ExhaustiveMetersLikeTheHeuristic) {
  // exhaustive_partition must meter through the same counters partition()
  // does, so heuristic-vs-oracle trace comparisons line up, and its span
  // must carry the sweep parameters.
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CostModelDb db = calibrate(net, params).db;
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10});
  const CycleEstimator est(net, db, spec);

  TelemetryRegistry& global = TelemetryRegistry::global();
  const obs::MetricsSnapshot before = global.snapshot();
  const std::size_t spans_before = global.span_count();
  global.set_enabled(true);
  const PartitionResult result =
      exhaustive_partition(est, snap, {.threads = 2});
  global.set_enabled(false);
  const std::string delta =
      obs::snapshot_text(obs::snapshot_delta(before, global.snapshot()));

  EXPECT_NE(delta.find("counter partitioner.calls 1"), std::string::npos);
  EXPECT_NE(delta.find("counter partitioner.cost_model_evals " +
                       std::to_string(result.evaluations)),
            std::string::npos);
  EXPECT_NE(delta.find("counter estimator.evaluations " +
                       std::to_string(result.evaluations)),
            std::string::npos);

  bool found_span = false;
  const auto spans = global.spans();
  for (std::size_t i = spans_before; i < spans.size(); ++i) {
    if (spans[i].name != "partition.exhaustive") continue;
    found_span = true;
    bool has_threads = false, has_evals = false;
    for (const auto& [key, value] : spans[i].attrs) {
      has_threads = has_threads || key == "threads";
      has_evals = has_evals || key == "evaluations";
    }
    EXPECT_TRUE(has_threads);
    EXPECT_TRUE(has_evals);
  }
  EXPECT_TRUE(found_span);
}

// ----------------------------------------------------------- threading

class ObsThreadedTest : public ::testing::Test {};

TEST_F(ObsThreadedTest, ConcurrentCountersSumExactly) {
  TelemetryRegistry reg;
  constexpr int kThreads = 8, kAdds = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg] {
      obs::Counter& c = reg.counter("shared");
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST_F(ObsThreadedTest, ConcurrentSpansAndMetricsAreSafe) {
  TelemetryRegistry reg;
  constexpr int kThreads = 8, kSpans = 200;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg, t] {
      for (int i = 0; i < kSpans; ++i) {
        Span span(reg, "work");
        span.attr("t", JsonValue(t));
        reg.latency("lat", 0.0, 100.0, 10).record(1.0);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(reg.span_count(),
            static_cast<std::size_t>(kThreads) * kSpans);
  // Every span carries the stable id of the thread that recorded it.
  for (const obs::SpanRecord& s : reg.spans()) {
    EXPECT_EQ(s.name, "work");
  }
  EXPECT_EQ(reg.latency("lat", 0.0, 100.0, 10).count(),
            static_cast<std::size_t>(kThreads) * kSpans);
}

}  // namespace
}  // namespace netpart

// Golden regression of the paper reproduction: the headline numbers that
// EXPERIMENTS.md reports must not drift when the library changes.  These
// values were cross-checked against the published tables (see
// EXPERIMENTS.md for the knife-edge cells where the paper disagrees with
// itself); a deliberate recalibration of the presets should update them
// consciously.
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "bench/common.hpp"
#include "calib/calibrate.hpp"
#include "core/decompose.hpp"
#include "core/partitioner.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

struct Testbed {
  Network net = presets::paper_testbed();
  CalibrationResult cal = bench::calibrate_testbed(net);
  AvailabilitySnapshot snap = bench::idle_snapshot(net);
};

Testbed& testbed() {
  static Testbed tb;
  return tb;
}

ProcessorConfig choose(bool overlap, int n) {
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = n, .iterations = 10, .overlap = overlap});
  CycleEstimator est(testbed().net, testbed().cal.db, spec);
  return partition(est, testbed().snap).config;
}

TEST(PaperRegression, Table1Sten1Choices) {
  EXPECT_EQ(choose(false, 60), (ProcessorConfig{2, 0}));
  EXPECT_EQ(choose(false, 300), (ProcessorConfig{5, 0}));
  EXPECT_EQ(choose(false, 600), (ProcessorConfig{6, 3}));
  EXPECT_EQ(choose(false, 1200), (ProcessorConfig{6, 4}));
}

TEST(PaperRegression, Table1Sten2Choices) {
  EXPECT_EQ(choose(true, 60), (ProcessorConfig{2, 0}));
  EXPECT_EQ(choose(true, 300), (ProcessorConfig{6, 0}));
  EXPECT_EQ(choose(true, 600), (ProcessorConfig{6, 5}));
  EXPECT_EQ(choose(true, 1200), (ProcessorConfig{6, 6}));
}

TEST(PaperRegression, Table1PartitionVectors) {
  // N = 1200 STEN-2 at (6,6): the self-consistent Eq. 3 values (the
  // paper's printed 171/86 sum to 1542 rows -- see EXPERIMENTS.md).
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = true});
  CycleEstimator est(testbed().net, testbed().cal.db, spec);
  const PartitionResult r = partition(est, testbed().snap);
  ASSERT_EQ(r.config, (ProcessorConfig{6, 6}));
  EXPECT_EQ(r.estimate.partition.at(0), 133);
  EXPECT_EQ(r.estimate.partition.at(6), 67);
  EXPECT_EQ(r.estimate.partition.total(), 1200);
}

TEST(PaperRegression, FittedConstantsStayOnThePaper) {
  const Eq1Fit& c1 = testbed().cal.db.comm_fit(0, Topology::OneD);
  const Eq1Fit& c2 = testbed().cal.db.comm_fit(1, Topology::OneD);
  // Paper: c2 = 1.1 / 1.9; c4 = .00283 / .00457.
  EXPECT_NEAR(c1.c2, 1.07, 0.05);
  EXPECT_NEAR(c1.c4, 0.00286, 0.0002);
  EXPECT_NEAR(c2.c2, 1.87, 0.05);
  EXPECT_NEAR(c2.c4, 0.00463, 0.0002);
}

TEST(PaperRegression, SequentialBaselineNearPaper) {
  // Paper Table 2: 1 Sparc2 at N=1200 took 21985 ms for 10 iterations;
  // the flop-rate calibration puts ours at 21.6 s.
  const double ms =
      bench::measured_stencil_ms(testbed().net,
                                 apps::StencilConfig{.n = 1200,
                                                     .iterations = 10,
                                                     .overlap = false},
                                 {1, 0}, /*runs=*/1);
  EXPECT_NEAR(ms, 21985.0, 1200.0);
}

TEST(PaperRegression, EqualDecompositionLosesAt1200) {
  // The paper's N=1200 observation: 6 Sparc2s alone beat the equal
  // decomposition on all 12 processors.
  const apps::StencilConfig cfg{.n = 1200, .iterations = 10,
                                .overlap = false};
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  const ProcessorConfig all{6, 6};
  const Placement placement = contiguous_placement(testbed().net, all);
  const double equal = average_elapsed_ms(
      testbed().net, spec, placement, equal_partition(12, 1200), {}, 1);
  const double sparc_only =
      bench::measured_stencil_ms(testbed().net, cfg, {6, 0}, 1);
  EXPECT_LT(sparc_only, equal);
}

}  // namespace
}  // namespace netpart

// Property-based and parameterised sweeps over the core invariants:
//
//  * Eq. 3 partitions always cover the domain and track speed ratios.
//  * T_c(p) along the heuristic fill order is unimodal (Fig. 3), so the
//    binary search finds the same argmin a linear scan does.
//  * The heuristic never beats the exhaustive optimum (sanity of both),
//    and matches it on two-cluster networks.
//  * Estimator monotonicity: more bytes or more iterations never reduce
//    the estimate.
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/decompose.hpp"
#include "core/partitioner.hpp"
#include "exec/executor.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

struct RandomNetCase {
  std::uint64_t seed;
  int clusters;
};

class RandomNetworkProperties
    : public ::testing::TestWithParam<RandomNetCase> {
 protected:
  static CalibrationParams one_d_params() {
    CalibrationParams params;
    params.topologies = {Topology::OneD};
    return params;
  }
};

TEST_P(RandomNetworkProperties, BalancedPartitionInvariants) {
  Rng rng(GetParam().seed);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 6);
  const auto order = clusters_by_speed(net);
  Rng config_rng = rng.stream(1);
  for (int trial = 0; trial < 20; ++trial) {
    ProcessorConfig config(static_cast<std::size_t>(net.num_clusters()), 0);
    int total = 0;
    for (ClusterId c = 0; c < net.num_clusters(); ++c) {
      config[static_cast<std::size_t>(c)] = static_cast<int>(
          config_rng.next_int(0, net.cluster(c).size()));
      total += config[static_cast<std::size_t>(c)];
    }
    if (total == 0) continue;
    const std::int64_t pdus = config_rng.next_int(total, 5000);
    const PartitionVector pv =
        balanced_partition(net, config, order, pdus);
    // Coverage and positivity.
    ASSERT_EQ(pv.total(), pdus);
    ASSERT_NO_THROW(pv.validate(pdus));
    // Speed-proportionality: for any two ranks, work ratio tracks the
    // inverse flop-time ratio within integer rounding.
    int rank = 0;
    std::vector<std::pair<double, std::int64_t>> entries;  // (speed, A)
    for (ClusterId c : order) {
      for (int i = 0; i < config[static_cast<std::size_t>(c)];
           ++i, ++rank) {
        entries.emplace_back(
            1.0 / net.cluster(c).type().flop_time.as_seconds(),
            pv.at(rank));
      }
    }
    for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
      if (entries[i].first > entries[i + 1].first) {
        EXPECT_GE(entries[i].second + 1, entries[i + 1].second);
      }
    }
  }
}

TEST_P(RandomNetworkProperties, TcCurveUnimodalAndSearchesAgree) {
  Rng rng(GetParam().seed);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 6);
  const CalibrationResult cal = calibrate(net, one_d_params());
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));

  for (const int n : {300, 2400}) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    CycleEstimator est(net, cal.db, spec);

    PartitionOptions binary;
    PartitionOptions linear;
    linear.search = PartitionOptions::Search::Linear;
    const PartitionResult rb = partition(est, snap, binary);
    const PartitionResult rl = partition(est, snap, linear);
    // Linear scan is the ground truth for the per-cluster argmin; binary
    // search must agree whenever the curve is unimodal.  Verify both the
    // agreement and (for the first cluster) the unimodality itself.
    EXPECT_EQ(rb.config, rl.config) << "seed " << GetParam().seed;

    const ClusterId first = est.cluster_order().front();
    ProcessorConfig probe(static_cast<std::size_t>(net.num_clusters()), 0);
    std::vector<double> curve;
    for (int p = 1; p <= snap.available[static_cast<std::size_t>(first)];
         ++p) {
      probe[static_cast<std::size_t>(first)] = p;
      curve.push_back(est.estimate(probe).t_c_ms);
    }
    // A unimodal valley has no interior local maximum.
    int local_maxima = 0;
    for (std::size_t i = 1; i + 1 < curve.size(); ++i) {
      if (curve[i] > curve[i - 1] + 1e-9 && curve[i] > curve[i + 1] + 1e-9) {
        ++local_maxima;
      }
    }
    EXPECT_EQ(local_maxima, 0)
        << "T_c(p) should fall then rise (Fig. 3), seed "
        << GetParam().seed;
  }
}

TEST_P(RandomNetworkProperties, HeuristicNeverBeatsExhaustive) {
  Rng rng(GetParam().seed);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 5);
  const CalibrationResult cal = calibrate(net, one_d_params());
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  const PartitionResult heur = partition(est, snap);
  const PartitionResult exh = exhaustive_partition(est, snap);
  EXPECT_GE(heur.estimate.t_c_ms, exh.estimate.t_c_ms - 1e-9);
  EXPECT_LT(heur.evaluations, exh.evaluations);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomNetworkProperties,
    ::testing::Values(RandomNetCase{1, 2}, RandomNetCase{2, 2},
                      RandomNetCase{3, 3}, RandomNetCase{4, 3},
                      RandomNetCase{5, 4}, RandomNetCase{6, 4},
                      RandomNetCase{7, 5}, RandomNetCase{8, 5}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_k" +
             std::to_string(info.param.clusters);
    });

TEST_P(RandomNetworkProperties, PredictionNearMeasuredBestEndToEnd) {
  // The paper's headline property, on networks it never saw: the
  // predicted configuration's measured time is close to the best measured
  // configuration along the heuristic's fill order.
  Rng rng(GetParam().seed ^ 0xE2E);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 5);
  const CalibrationResult cal = calibrate(net, one_d_params());
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1800, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  const PartitionResult predicted = partition(est, snap);

  const auto measure = [&](const ProcessorConfig& config) {
    const Placement placement =
        contiguous_placement(net, config, est.cluster_order());
    const PartitionVector part =
        balanced_partition(net, config, est.cluster_order(), 1800);
    return execute(net, spec, placement, part, {}).elapsed.as_millis();
  };

  const double t_predicted = measure(predicted.config);
  // Sweep total processor counts along the fill order.
  double best = t_predicted;
  ProcessorConfig config(snap.available.size(), 0);
  for (ClusterId c : est.cluster_order()) {
    for (int i = 0; i < snap.available[static_cast<std::size_t>(c)]; ++i) {
      ++config[static_cast<std::size_t>(c)];
      best = std::min(best, measure(config));
    }
  }
  EXPECT_LE(t_predicted, 1.25 * best) << "seed " << GetParam().seed;
}

TEST(EstimatorMonotonicity, MoreWorkNeverCheaper) {
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  double prev = 0.0;
  for (const int n : {60, 120, 300, 600, 1200, 2400}) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    CycleEstimator est(net, cal.db, spec);
    const double tc = est.estimate({6, 6}).t_c_ms;
    EXPECT_GT(tc, prev) << "T_c must grow with problem size at fixed p";
    prev = tc;
  }
}

TEST(EstimatorMonotonicity, ElapsedScalesWithIterations) {
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  const auto elapsed = [&](int iters) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = 600, .iterations = iters,
                            .overlap = false});
    CycleEstimator est(net, cal.db, spec);
    return est.estimate({6, 0}).t_elapsed_ms;
  };
  EXPECT_NEAR(elapsed(20), 2.0 * elapsed(10), 1e-9);
}

}  // namespace
}  // namespace netpart

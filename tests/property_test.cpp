// Property-based and parameterised sweeps over the core invariants:
//
//  * Eq. 3 partitions always cover the domain and track speed ratios.
//  * T_c(p) along the heuristic fill order is unimodal (Fig. 3), so the
//    binary search finds the same argmin a linear scan does.
//  * The heuristic never beats the exhaustive optimum (sanity of both),
//    and matches it on two-cluster networks.
//  * Estimator monotonicity: more bytes or more iterations never reduce
//    the estimate.
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/decompose.hpp"
#include "core/partitioner.hpp"
#include "exec/executor.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

struct RandomNetCase {
  std::uint64_t seed;
  int clusters;
};

class RandomNetworkProperties
    : public ::testing::TestWithParam<RandomNetCase> {
 protected:
  static CalibrationParams one_d_params() {
    CalibrationParams params;
    params.topologies = {Topology::OneD};
    return params;
  }
};

TEST_P(RandomNetworkProperties, BalancedPartitionInvariants) {
  Rng rng(GetParam().seed);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 6);
  const auto order = clusters_by_speed(net);
  Rng config_rng = rng.stream(1);
  for (int trial = 0; trial < 20; ++trial) {
    ProcessorConfig config(static_cast<std::size_t>(net.num_clusters()), 0);
    int total = 0;
    for (ClusterId c = 0; c < net.num_clusters(); ++c) {
      config[static_cast<std::size_t>(c)] = static_cast<int>(
          config_rng.next_int(0, net.cluster(c).size()));
      total += config[static_cast<std::size_t>(c)];
    }
    if (total == 0) continue;
    const std::int64_t pdus = config_rng.next_int(total, 5000);
    const PartitionVector pv =
        balanced_partition(net, config, order, pdus);
    // Coverage and positivity.
    ASSERT_EQ(pv.total(), pdus);
    ASSERT_NO_THROW(pv.validate(pdus));
    // Speed-proportionality: for any two ranks, work ratio tracks the
    // inverse flop-time ratio within integer rounding.
    int rank = 0;
    std::vector<std::pair<double, std::int64_t>> entries;  // (speed, A)
    for (ClusterId c : order) {
      for (int i = 0; i < config[static_cast<std::size_t>(c)];
           ++i, ++rank) {
        entries.emplace_back(
            1.0 / net.cluster(c).type().flop_time.as_seconds(),
            pv.at(rank));
      }
    }
    for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
      if (entries[i].first > entries[i + 1].first) {
        EXPECT_GE(entries[i].second + 1, entries[i + 1].second);
      }
    }
  }
}

TEST_P(RandomNetworkProperties, TcCurveUnimodalAndSearchesAgree) {
  Rng rng(GetParam().seed);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 6);
  const CalibrationResult cal = calibrate(net, one_d_params());
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));

  for (const int n : {300, 2400}) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    CycleEstimator est(net, cal.db, spec);

    PartitionOptions binary;
    PartitionOptions linear;
    linear.search = PartitionOptions::Search::Linear;
    const PartitionResult rb = partition(est, snap, binary);
    const PartitionResult rl = partition(est, snap, linear);
    // Linear scan is the ground truth for the per-cluster argmin; binary
    // search must agree whenever the curve is unimodal.  Verify both the
    // agreement and (for the first cluster) the unimodality itself.
    EXPECT_EQ(rb.config, rl.config) << "seed " << GetParam().seed;

    const ClusterId first = est.cluster_order().front();
    ProcessorConfig probe(static_cast<std::size_t>(net.num_clusters()), 0);
    std::vector<double> curve;
    for (int p = 1; p <= snap.available[static_cast<std::size_t>(first)];
         ++p) {
      probe[static_cast<std::size_t>(first)] = p;
      curve.push_back(est.estimate(probe).t_c_ms);
    }
    // A unimodal valley has no interior local maximum.
    int local_maxima = 0;
    for (std::size_t i = 1; i + 1 < curve.size(); ++i) {
      if (curve[i] > curve[i - 1] + 1e-9 && curve[i] > curve[i + 1] + 1e-9) {
        ++local_maxima;
      }
    }
    EXPECT_EQ(local_maxima, 0)
        << "T_c(p) should fall then rise (Fig. 3), seed "
        << GetParam().seed;
  }
}

TEST_P(RandomNetworkProperties, HeuristicNeverBeatsExhaustive) {
  Rng rng(GetParam().seed);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 5);
  const CalibrationResult cal = calibrate(net, one_d_params());
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  const PartitionResult heur = partition(est, snap);
  const PartitionResult exh = exhaustive_partition(est, snap);
  EXPECT_GE(heur.estimate.t_c_ms, exh.estimate.t_c_ms - 1e-9);
  EXPECT_LT(heur.evaluations, exh.evaluations);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomNetworkProperties,
    ::testing::Values(RandomNetCase{1, 2}, RandomNetCase{2, 2},
                      RandomNetCase{3, 3}, RandomNetCase{4, 3},
                      RandomNetCase{5, 4}, RandomNetCase{6, 4},
                      RandomNetCase{7, 5}, RandomNetCase{8, 5}),
    [](const auto& test_info) {
      return "seed" + std::to_string(test_info.param.seed) + "_k" +
             std::to_string(test_info.param.clusters);
    });

TEST_P(RandomNetworkProperties, PredictionNearMeasuredBestEndToEnd) {
  // The paper's headline property, on networks it never saw: the
  // predicted configuration's measured time is close to the best measured
  // configuration along the heuristic's fill order.
  Rng rng(GetParam().seed ^ 0xE2E);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 5);
  const CalibrationResult cal = calibrate(net, one_d_params());
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1800, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  const PartitionResult predicted = partition(est, snap);

  const auto measure = [&](const ProcessorConfig& config) {
    const Placement placement =
        contiguous_placement(net, config, est.cluster_order());
    const PartitionVector part =
        balanced_partition(net, config, est.cluster_order(), 1800);
    return execute(net, spec, placement, part, {}).elapsed.as_millis();
  };

  const double t_predicted = measure(predicted.config);
  // Sweep total processor counts along the fill order.
  double best = t_predicted;
  ProcessorConfig config(snap.available.size(), 0);
  for (ClusterId c : est.cluster_order()) {
    for (int i = 0; i < snap.available[static_cast<std::size_t>(c)]; ++i) {
      ++config[static_cast<std::size_t>(c)];
      best = std::min(best, measure(config));
    }
  }
  EXPECT_LE(t_predicted, 1.25 * best) << "seed " << GetParam().seed;
}

TEST_P(RandomNetworkProperties, FastPathBitwiseMatchesReference) {
  // The closed-form engine must not be "close": every cost field of
  // estimate_into() is the exact same double estimate() produces, on
  // networks and configurations it never saw.
  Rng rng(GetParam().seed ^ 0xFA57);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 6);
  const CalibrationResult cal = calibrate(net, one_d_params());
  EstimatorScratch scratch;
  Rng config_rng = rng.stream(2);
  for (const auto& [n, overlap] :
       std::vector<std::pair<int, bool>>{{300, false},
                                         {600, true},
                                         {2400, false}}) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = overlap});
    CycleEstimator est(net, cal.db, spec);
    for (int trial = 0; trial < 25; ++trial) {
      ProcessorConfig config(static_cast<std::size_t>(net.num_clusters()),
                             0);
      int total = 0;
      for (ClusterId c = 0; c < net.num_clusters(); ++c) {
        config[static_cast<std::size_t>(c)] = static_cast<int>(
            config_rng.next_int(0, net.cluster(c).size()));
        total += config[static_cast<std::size_t>(c)];
      }
      if (total == 0) continue;
      const CycleEstimate ref = est.estimate(config);
      const FastEstimate fast = est.estimate_into(config, scratch);
      ASSERT_EQ(ref.t_comp_ms, fast.t_comp_ms) << "seed "
                                               << GetParam().seed;
      ASSERT_EQ(ref.t_comm_ms, fast.t_comm_ms) << "seed "
                                               << GetParam().seed;
      ASSERT_EQ(ref.t_overlap_ms, fast.t_overlap_ms)
          << "seed " << GetParam().seed;
      ASSERT_EQ(ref.t_c_ms, fast.t_c_ms) << "seed " << GetParam().seed;
      ASSERT_EQ(ref.t_elapsed_ms, fast.t_elapsed_ms)
          << "seed " << GetParam().seed;
    }
  }
}

TEST_P(RandomNetworkProperties, ParallelExhaustiveMatchesSerial) {
  Rng rng(GetParam().seed);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 5);
  const CalibrationResult cal = calibrate(net, one_d_params());
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  const PartitionResult serial =
      exhaustive_partition(est, snap, {.threads = 1});
  for (const int threads : {2, 3, 4}) {
    const PartitionResult parallel =
        exhaustive_partition(est, snap, {.threads = threads});
    EXPECT_EQ(serial.config, parallel.config)
        << "seed " << GetParam().seed << " threads " << threads;
    EXPECT_EQ(serial.estimate.t_c_ms, parallel.estimate.t_c_ms);
    EXPECT_EQ(serial.evaluations, parallel.evaluations);
  }
}

TEST_P(RandomNetworkProperties, BatchBitwiseMatchesScalarAcrossSizes) {
  // Differential lockdown of the lane engine: for every batch size that
  // exercises a distinct code path -- a lone config (scalar remainder
  // only), one lane short of a full batch, exactly kLanes, one past
  // (full batch + remainder tail), and a multi-batch run -- every result
  // must be bitwise identical to estimate_into() on every cost field.
  Rng rng(GetParam().seed ^ 0xBA7C);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 6);
  const CalibrationResult cal = calibrate(net, one_d_params());
  Rng config_rng = rng.stream(3);
  constexpr int kLanes = BatchScratch::kLanes;
  for (const auto& [n, overlap] :
       std::vector<std::pair<int, bool>>{{300, false}, {1200, true}}) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = overlap});
    CycleEstimator est(net, cal.db, spec);
    for (const std::size_t count :
         {std::size_t{1}, static_cast<std::size_t>(kLanes - 1),
          static_cast<std::size_t>(kLanes),
          static_cast<std::size_t>(kLanes + 1),
          static_cast<std::size_t>(3 * kLanes + 5)}) {
      std::vector<ProcessorConfig> configs;
      while (configs.size() < count) {
        ProcessorConfig config(
            static_cast<std::size_t>(net.num_clusters()), 0);
        int total = 0;
        for (ClusterId c = 0; c < net.num_clusters(); ++c) {
          config[static_cast<std::size_t>(c)] = static_cast<int>(
              config_rng.next_int(0, net.cluster(c).size()));
          total += config[static_cast<std::size_t>(c)];
        }
        if (total == 0) continue;  // estimate requires >= 1 processor
        configs.push_back(std::move(config));
      }
      EstimatorScratch batch_scratch;
      std::vector<FastEstimate> got(count);
      est.estimate_batch(configs.data(), count, got.data(), batch_scratch);
      EstimatorScratch scalar_scratch;
      for (std::size_t i = 0; i < count; ++i) {
        const FastEstimate want =
            est.estimate_into(configs[i], scalar_scratch);
        ASSERT_EQ(want.t_comp_ms, got[i].t_comp_ms)
            << "seed " << GetParam().seed << " count " << count << " i "
            << i;
        ASSERT_EQ(want.t_comm_ms, got[i].t_comm_ms)
            << "seed " << GetParam().seed << " count " << count << " i "
            << i;
        ASSERT_EQ(want.t_overlap_ms, got[i].t_overlap_ms)
            << "seed " << GetParam().seed << " count " << count << " i "
            << i;
        ASSERT_EQ(want.t_c_ms, got[i].t_c_ms)
            << "seed " << GetParam().seed << " count " << count << " i "
            << i;
        ASSERT_EQ(want.t_elapsed_ms, got[i].t_elapsed_ms)
            << "seed " << GetParam().seed << " count " << count << " i "
            << i;
      }
      // The two paths must also agree on the evaluation count they
      // record; only full lanes may be attributed to the batch engine.
      EXPECT_EQ(batch_scratch.evaluations, scalar_scratch.evaluations);
      EXPECT_LE(batch_scratch.batch_evaluations,
                batch_scratch.evaluations);
    }
  }
}

TEST(BatchEngine, RemainderOnlyTailAndEmptyBatch) {
  // count < kLanes never touches the lane engine's full-batch path; count
  // == 0 must be a no-op.  Both still bitwise-match the scalar engine.
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  EstimatorScratch scratch;
  est.estimate_batch(nullptr, 0, nullptr, scratch);
  EXPECT_EQ(scratch.evaluations, 0u);
  EXPECT_EQ(scratch.batch_evaluations, 0u);

  const std::vector<ProcessorConfig> tail = {{1, 0}, {6, 6}, {3, 2}};
  std::vector<FastEstimate> got(tail.size());
  est.estimate_batch(tail.data(), tail.size(), got.data(), scratch);
  EstimatorScratch scalar_scratch;
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const FastEstimate want = est.estimate_into(tail[i], scalar_scratch);
    EXPECT_EQ(want.t_c_ms, got[i].t_c_ms) << "i " << i;
    EXPECT_EQ(want.t_elapsed_ms, got[i].t_elapsed_ms) << "i " << i;
  }
  EXPECT_EQ(scratch.evaluations, 3u);
  // A sub-lane-width tail is scalar work by definition.
  EXPECT_EQ(scratch.batch_evaluations, 0u);
}

TEST(GroupShares, MatchesProportionalPartitionExactly) {
  // proportional_group_shares must reproduce, per homogeneous group, the
  // exact per-rank assignment of proportional_partition: the first
  // `extras` ranks of a group carry base+1, the rest base.
  Rng rng(0x5A5A);
  int closed_form = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const int groups = static_cast<int>(rng.next_int(1, 6));
    std::vector<double> group_weights;
    std::vector<int> group_sizes;
    std::vector<double> rank_weights;
    int total_ranks = 0;
    for (int g = 0; g < groups; ++g) {
      group_weights.push_back(0.1 + 10.0 * rng.next_double());
      group_sizes.push_back(static_cast<int>(rng.next_int(1, 5)));
      total_ranks += group_sizes.back();
      for (int i = 0; i < group_sizes.back(); ++i) {
        rank_weights.push_back(group_weights.back());
      }
    }
    const std::int64_t pdus = rng.next_int(total_ranks, 4000);
    std::vector<GroupShare> shares(static_cast<std::size_t>(groups));
    const PartitionVector pv = proportional_partition(rank_weights, pdus);
    if (!proportional_group_shares(group_weights, group_sizes, pdus,
                                   shares)) {
      continue;  // starvation repair engaged; callers materialise
    }
    ++closed_form;
    int rank = 0;
    for (int g = 0; g < groups; ++g) {
      for (int i = 0; i < group_sizes[static_cast<std::size_t>(g)];
           ++i, ++rank) {
        const std::int64_t expected =
            shares[static_cast<std::size_t>(g)].base +
            (i < shares[static_cast<std::size_t>(g)].extras ? 1 : 0);
        ASSERT_EQ(pv.at(rank), expected)
            << "trial " << trial << " group " << g << " rank " << rank;
      }
    }
  }
  // The closed form must cover the overwhelming majority of draws.
  EXPECT_GT(closed_form, 350);
}

TEST(EstimatorMonotonicity, MoreWorkNeverCheaper) {
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  double prev = 0.0;
  for (const int n : {60, 120, 300, 600, 1200, 2400}) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    CycleEstimator est(net, cal.db, spec);
    const double tc = est.estimate({6, 6}).t_c_ms;
    EXPECT_GT(tc, prev) << "T_c must grow with problem size at fixed p";
    prev = tc;
  }
}

TEST(EstimatorMonotonicity, ElapsedScalesWithIterations) {
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  const auto elapsed = [&](int iters) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = 600, .iterations = iters,
                            .overlap = false});
    CycleEstimator est(net, cal.db, spec);
    return est.estimate({6, 0}).t_elapsed_ms;
  };
  EXPECT_NEAR(elapsed(20), 2.0 * elapsed(10), 1e-9);
}

}  // namespace
}  // namespace netpart

// Property-based and parameterised sweeps over the core invariants:
//
//  * Eq. 3 partitions always cover the domain and track speed ratios.
//  * T_c(p) along the heuristic fill order is unimodal (Fig. 3), so the
//    binary search finds the same argmin a linear scan does.
//  * The heuristic never beats the exhaustive optimum (sanity of both),
//    and matches it on two-cluster networks.
//  * Estimator monotonicity: more bytes or more iterations never reduce
//    the estimate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/decompose.hpp"
#include "core/partitioner.hpp"
#include "dp/rank_kernel.hpp"
#include "exec/executor.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

struct RandomNetCase {
  std::uint64_t seed;
  int clusters;
};

class RandomNetworkProperties
    : public ::testing::TestWithParam<RandomNetCase> {
 protected:
  static CalibrationParams one_d_params() {
    CalibrationParams params;
    params.topologies = {Topology::OneD};
    return params;
  }
};

TEST_P(RandomNetworkProperties, BalancedPartitionInvariants) {
  Rng rng(GetParam().seed);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 6);
  const auto order = clusters_by_speed(net);
  Rng config_rng = rng.stream(1);
  for (int trial = 0; trial < 20; ++trial) {
    ProcessorConfig config(static_cast<std::size_t>(net.num_clusters()), 0);
    int total = 0;
    for (ClusterId c = 0; c < net.num_clusters(); ++c) {
      config[static_cast<std::size_t>(c)] = static_cast<int>(
          config_rng.next_int(0, net.cluster(c).size()));
      total += config[static_cast<std::size_t>(c)];
    }
    if (total == 0) continue;
    const std::int64_t pdus = config_rng.next_int(total, 5000);
    const PartitionVector pv =
        balanced_partition(net, config, order, pdus);
    // Coverage and positivity.
    ASSERT_EQ(pv.total(), pdus);
    ASSERT_NO_THROW(pv.validate(pdus));
    // Speed-proportionality: for any two ranks, work ratio tracks the
    // inverse flop-time ratio within integer rounding.
    int rank = 0;
    std::vector<std::pair<double, std::int64_t>> entries;  // (speed, A)
    for (ClusterId c : order) {
      for (int i = 0; i < config[static_cast<std::size_t>(c)];
           ++i, ++rank) {
        entries.emplace_back(
            1.0 / net.cluster(c).type().flop_time.as_seconds(),
            pv.at(rank));
      }
    }
    for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
      if (entries[i].first > entries[i + 1].first) {
        EXPECT_GE(entries[i].second + 1, entries[i + 1].second);
      }
    }
  }
}

TEST_P(RandomNetworkProperties, TcCurveUnimodalAndSearchesAgree) {
  Rng rng(GetParam().seed);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 6);
  const CalibrationResult cal = calibrate(net, one_d_params());
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));

  for (const int n : {300, 2400}) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    CycleEstimator est(net, cal.db, spec);

    PartitionOptions binary;
    PartitionOptions linear;
    linear.search = PartitionOptions::Search::Linear;
    const PartitionResult rb = partition(est, snap, binary);
    const PartitionResult rl = partition(est, snap, linear);
    // Linear scan is the ground truth for the per-cluster argmin; binary
    // search must agree whenever the curve is unimodal.  Verify both the
    // agreement and (for the first cluster) the unimodality itself.
    EXPECT_EQ(rb.config, rl.config) << "seed " << GetParam().seed;

    const ClusterId first = est.cluster_order().front();
    ProcessorConfig probe(static_cast<std::size_t>(net.num_clusters()), 0);
    std::vector<double> curve;
    for (int p = 1; p <= snap.available[static_cast<std::size_t>(first)];
         ++p) {
      probe[static_cast<std::size_t>(first)] = p;
      curve.push_back(est.estimate(probe).t_c_ms);
    }
    // A unimodal valley has no interior local maximum.
    int local_maxima = 0;
    for (std::size_t i = 1; i + 1 < curve.size(); ++i) {
      if (curve[i] > curve[i - 1] + 1e-9 && curve[i] > curve[i + 1] + 1e-9) {
        ++local_maxima;
      }
    }
    EXPECT_EQ(local_maxima, 0)
        << "T_c(p) should fall then rise (Fig. 3), seed "
        << GetParam().seed;
  }
}

TEST_P(RandomNetworkProperties, HeuristicNeverBeatsExhaustive) {
  Rng rng(GetParam().seed);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 5);
  const CalibrationResult cal = calibrate(net, one_d_params());
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  const PartitionResult heur = partition(est, snap);
  const PartitionResult exh = exhaustive_partition(est, snap);
  EXPECT_GE(heur.estimate.t_c_ms, exh.estimate.t_c_ms - 1e-9);
  EXPECT_LT(heur.evaluations, exh.evaluations);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomNetworkProperties,
    ::testing::Values(RandomNetCase{1, 2}, RandomNetCase{2, 2},
                      RandomNetCase{3, 3}, RandomNetCase{4, 3},
                      RandomNetCase{5, 4}, RandomNetCase{6, 4},
                      RandomNetCase{7, 5}, RandomNetCase{8, 5}),
    [](const auto& test_info) {
      return "seed" + std::to_string(test_info.param.seed) + "_k" +
             std::to_string(test_info.param.clusters);
    });

TEST_P(RandomNetworkProperties, PredictionNearMeasuredBestEndToEnd) {
  // The paper's headline property, on networks it never saw: the
  // predicted configuration's measured time is close to the best measured
  // configuration along the heuristic's fill order.
  Rng rng(GetParam().seed ^ 0xE2E);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 5);
  const CalibrationResult cal = calibrate(net, one_d_params());
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1800, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  const PartitionResult predicted = partition(est, snap);

  const auto measure = [&](const ProcessorConfig& config) {
    const Placement placement =
        contiguous_placement(net, config, est.cluster_order());
    const PartitionVector part =
        balanced_partition(net, config, est.cluster_order(), 1800);
    return execute(net, spec, placement, part, {}).elapsed.as_millis();
  };

  const double t_predicted = measure(predicted.config);
  // Sweep total processor counts along the fill order.
  double best = t_predicted;
  ProcessorConfig config(snap.available.size(), 0);
  for (ClusterId c : est.cluster_order()) {
    for (int i = 0; i < snap.available[static_cast<std::size_t>(c)]; ++i) {
      ++config[static_cast<std::size_t>(c)];
      best = std::min(best, measure(config));
    }
  }
  EXPECT_LE(t_predicted, 1.25 * best) << "seed " << GetParam().seed;
}

TEST_P(RandomNetworkProperties, FastPathBitwiseMatchesReference) {
  // The closed-form engine must not be "close": every cost field of
  // estimate_into() is the exact same double estimate() produces, on
  // networks and configurations it never saw.
  Rng rng(GetParam().seed ^ 0xFA57);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 6);
  const CalibrationResult cal = calibrate(net, one_d_params());
  EstimatorScratch scratch;
  Rng config_rng = rng.stream(2);
  for (const auto& [n, overlap] :
       std::vector<std::pair<int, bool>>{{300, false},
                                         {600, true},
                                         {2400, false}}) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = overlap});
    CycleEstimator est(net, cal.db, spec);
    for (int trial = 0; trial < 25; ++trial) {
      ProcessorConfig config(static_cast<std::size_t>(net.num_clusters()),
                             0);
      int total = 0;
      for (ClusterId c = 0; c < net.num_clusters(); ++c) {
        config[static_cast<std::size_t>(c)] = static_cast<int>(
            config_rng.next_int(0, net.cluster(c).size()));
        total += config[static_cast<std::size_t>(c)];
      }
      if (total == 0) continue;
      const CycleEstimate ref = est.estimate(config);
      const FastEstimate fast = est.estimate_into(config, scratch);
      ASSERT_EQ(ref.t_comp_ms, fast.t_comp_ms) << "seed "
                                               << GetParam().seed;
      ASSERT_EQ(ref.t_comm_ms, fast.t_comm_ms) << "seed "
                                               << GetParam().seed;
      ASSERT_EQ(ref.t_overlap_ms, fast.t_overlap_ms)
          << "seed " << GetParam().seed;
      ASSERT_EQ(ref.t_c_ms, fast.t_c_ms) << "seed " << GetParam().seed;
      ASSERT_EQ(ref.t_elapsed_ms, fast.t_elapsed_ms)
          << "seed " << GetParam().seed;
    }
  }
}

TEST_P(RandomNetworkProperties, ParallelExhaustiveMatchesSerial) {
  Rng rng(GetParam().seed);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 5);
  const CalibrationResult cal = calibrate(net, one_d_params());
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  const PartitionResult serial =
      exhaustive_partition(est, snap, {.threads = 1});
  for (const int threads : {2, 3, 4}) {
    const PartitionResult parallel =
        exhaustive_partition(est, snap, {.threads = threads});
    EXPECT_EQ(serial.config, parallel.config)
        << "seed " << GetParam().seed << " threads " << threads;
    EXPECT_EQ(serial.estimate.t_c_ms, parallel.estimate.t_c_ms);
    EXPECT_EQ(serial.evaluations, parallel.evaluations);
  }
}

TEST_P(RandomNetworkProperties, BatchBitwiseMatchesScalarAcrossSizes) {
  // Differential lockdown of the lane engine: for every batch size that
  // exercises a distinct code path -- a lone config (scalar remainder
  // only), one lane short of a full batch, exactly kLanes, one past
  // (full batch + remainder tail), and a multi-batch run -- every result
  // must be bitwise identical to estimate_into() on every cost field.
  Rng rng(GetParam().seed ^ 0xBA7C);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 6);
  const CalibrationResult cal = calibrate(net, one_d_params());
  Rng config_rng = rng.stream(3);
  constexpr int kLanes = BatchScratch::kLanes;
  for (const auto& [n, overlap] :
       std::vector<std::pair<int, bool>>{{300, false}, {1200, true}}) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = overlap});
    CycleEstimator est(net, cal.db, spec);
    for (const std::size_t count :
         {std::size_t{1}, static_cast<std::size_t>(kLanes - 1),
          static_cast<std::size_t>(kLanes),
          static_cast<std::size_t>(kLanes + 1),
          static_cast<std::size_t>(3 * kLanes + 5)}) {
      std::vector<ProcessorConfig> configs;
      while (configs.size() < count) {
        ProcessorConfig config(
            static_cast<std::size_t>(net.num_clusters()), 0);
        int total = 0;
        for (ClusterId c = 0; c < net.num_clusters(); ++c) {
          config[static_cast<std::size_t>(c)] = static_cast<int>(
              config_rng.next_int(0, net.cluster(c).size()));
          total += config[static_cast<std::size_t>(c)];
        }
        if (total == 0) continue;  // estimate requires >= 1 processor
        configs.push_back(std::move(config));
      }
      EstimatorScratch batch_scratch;
      std::vector<FastEstimate> got(count);
      est.estimate_batch(configs.data(), count, got.data(), batch_scratch);
      EstimatorScratch scalar_scratch;
      for (std::size_t i = 0; i < count; ++i) {
        const FastEstimate want =
            est.estimate_into(configs[i], scalar_scratch);
        ASSERT_EQ(want.t_comp_ms, got[i].t_comp_ms)
            << "seed " << GetParam().seed << " count " << count << " i "
            << i;
        ASSERT_EQ(want.t_comm_ms, got[i].t_comm_ms)
            << "seed " << GetParam().seed << " count " << count << " i "
            << i;
        ASSERT_EQ(want.t_overlap_ms, got[i].t_overlap_ms)
            << "seed " << GetParam().seed << " count " << count << " i "
            << i;
        ASSERT_EQ(want.t_c_ms, got[i].t_c_ms)
            << "seed " << GetParam().seed << " count " << count << " i "
            << i;
        ASSERT_EQ(want.t_elapsed_ms, got[i].t_elapsed_ms)
            << "seed " << GetParam().seed << " count " << count << " i "
            << i;
      }
      // The two paths must also agree on the evaluation count they
      // record; only full lanes may be attributed to the batch engine.
      EXPECT_EQ(batch_scratch.evaluations, scalar_scratch.evaluations);
      EXPECT_LE(batch_scratch.batch_evaluations,
                batch_scratch.evaluations);
    }
  }
}

TEST(BatchEngine, RemainderOnlyTailAndEmptyBatch) {
  // count < kLanes never touches the lane engine's full-batch path; count
  // == 0 must be a no-op.  Both still bitwise-match the scalar engine.
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  EstimatorScratch scratch;
  est.estimate_batch(nullptr, 0, nullptr, scratch);
  EXPECT_EQ(scratch.evaluations, 0u);
  EXPECT_EQ(scratch.batch_evaluations, 0u);

  const std::vector<ProcessorConfig> tail = {{1, 0}, {6, 6}, {3, 2}};
  std::vector<FastEstimate> got(tail.size());
  est.estimate_batch(tail.data(), tail.size(), got.data(), scratch);
  EstimatorScratch scalar_scratch;
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const FastEstimate want = est.estimate_into(tail[i], scalar_scratch);
    EXPECT_EQ(want.t_c_ms, got[i].t_c_ms) << "i " << i;
    EXPECT_EQ(want.t_elapsed_ms, got[i].t_elapsed_ms) << "i " << i;
  }
  EXPECT_EQ(scratch.evaluations, 3u);
  // A sub-lane-width tail is scalar work by definition.
  EXPECT_EQ(scratch.batch_evaluations, 0u);
}

TEST(GroupShares, MatchesProportionalPartitionExactly) {
  // proportional_group_shares must reproduce, per homogeneous group, the
  // exact per-rank assignment of proportional_partition: the first
  // `extras` ranks of a group carry base+1, the rest base.
  Rng rng(0x5A5A);
  int closed_form = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const int groups = static_cast<int>(rng.next_int(1, 6));
    std::vector<double> group_weights;
    std::vector<int> group_sizes;
    std::vector<double> rank_weights;
    int total_ranks = 0;
    for (int g = 0; g < groups; ++g) {
      group_weights.push_back(0.1 + 10.0 * rng.next_double());
      group_sizes.push_back(static_cast<int>(rng.next_int(1, 5)));
      total_ranks += group_sizes.back();
      for (int i = 0; i < group_sizes.back(); ++i) {
        rank_weights.push_back(group_weights.back());
      }
    }
    const std::int64_t pdus = rng.next_int(total_ranks, 4000);
    std::vector<GroupShare> shares(static_cast<std::size_t>(groups));
    const PartitionVector pv = proportional_partition(rank_weights, pdus);
    if (!proportional_group_shares(group_weights, group_sizes, pdus,
                                   shares)) {
      continue;  // starvation repair engaged; callers materialise
    }
    ++closed_form;
    int rank = 0;
    for (int g = 0; g < groups; ++g) {
      for (int i = 0; i < group_sizes[static_cast<std::size_t>(g)];
           ++i, ++rank) {
        const std::int64_t expected =
            shares[static_cast<std::size_t>(g)].base +
            (i < shares[static_cast<std::size_t>(g)].extras ? 1 : 0);
        ASSERT_EQ(pv.at(rank), expected)
            << "trial " << trial << " group " << g << " rank " << rank;
      }
    }
  }
  // The closed form must cover the overwhelming majority of draws.
  EXPECT_GT(closed_form, 350);
}

// Stable-sort oracle for the rank kernel: ranks_before[g] as
// proportional_partition's per-rank stable sort defines it.
std::vector<std::int64_t> ranks_before_oracle(
    const std::vector<double>& frac, const std::vector<int>& sizes) {
  std::vector<int> order(frac.size());
  for (std::size_t g = 0; g < order.size(); ++g) {
    order[g] = static_cast<int>(g);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return frac[a] > frac[b]; });
  std::vector<std::int64_t> out(frac.size());
  std::int64_t before = 0;
  for (const int g : order) {
    out[static_cast<std::size_t>(g)] = before;
    before += sizes[static_cast<std::size_t>(g)];
  }
  return out;
}

TEST(RankKernel, MatchesGeneralOnAllTiePatternsUpTo4) {
  // Exhaustive differential over the sorting network's whole input space
  // modulo magnitude: with 4 lanes, only the pattern of equalities and
  // orderings among the fracs matters, so drawing every frac from a
  // 4-value palette covers every tie pattern (including all-equal), and
  // every size from {0, 1, 3} covers empty and uneven groups.  The
  // network must agree with the quadratic general pass AND the
  // stable-sort oracle exactly.
  const double palette[] = {0.0, 0.25, 0.5, 0.999};
  const int size_palette[] = {0, 1, 3};
  for (int groups = 1; groups <= 4; ++groups) {
    int frac_combos = 1;
    int size_combos = 1;
    for (int g = 0; g < groups; ++g) {
      frac_combos *= 4;
      size_combos *= 3;
    }
    for (int fc = 0; fc < frac_combos; ++fc) {
      std::vector<double> frac(static_cast<std::size_t>(groups));
      int f = fc;
      for (int g = 0; g < groups; ++g, f /= 4) frac[g] = palette[f % 4];
      for (int sc = 0; sc < size_combos; ++sc) {
        std::vector<int> sizes(static_cast<std::size_t>(groups));
        int s = sc;
        for (int g = 0; g < groups; ++g, s /= 3) {
          sizes[g] = size_palette[s % 3];
        }
        std::int64_t kernel[4];
        std::int64_t general[4];
        largest_remainder_ranks(frac.data(), sizes.data(), groups, kernel);
        detail::largest_remainder_ranks_general(frac.data(), sizes.data(),
                                                groups, general);
        const std::vector<std::int64_t> oracle =
            ranks_before_oracle(frac, sizes);
        for (int g = 0; g < groups; ++g) {
          ASSERT_EQ(kernel[g], general[g])
              << "groups " << groups << " fc " << fc << " sc " << sc
              << " g " << g;
          ASSERT_EQ(kernel[g], oracle[static_cast<std::size_t>(g)])
              << "groups " << groups << " fc " << fc << " sc " << sc
              << " g " << g;
        }
      }
    }
  }
}

TEST(RankKernel, AllEqualFracsUseOriginalGroupOrder) {
  // Equal fracs everywhere (the all-equal-remainder pattern): the stable
  // order is the original group order, so ranks_before must be the plain
  // exclusive prefix sum of the sizes.
  const std::vector<double> frac = {0.5, 0.5, 0.5, 0.5};
  const std::vector<int> sizes = {2, 5, 1, 3};
  std::int64_t rb[4];
  largest_remainder_ranks(frac.data(), sizes.data(), 4, rb);
  EXPECT_EQ(rb[0], 0);
  EXPECT_EQ(rb[1], 2);
  EXPECT_EQ(rb[2], 7);
  EXPECT_EQ(rb[3], 8);
}

TEST(RankKernel, GeneralPathAboveFourGroupsMatchesOracle) {
  // Above 4 groups the entry point must dispatch to the quadratic pass;
  // both must still equal the stable-sort oracle on random draws with
  // forced ties.
  Rng rng(0x9A9A);
  for (int trial = 0; trial < 200; ++trial) {
    const int groups = static_cast<int>(rng.next_int(5, 9));
    std::vector<double> frac(static_cast<std::size_t>(groups));
    std::vector<int> sizes(static_cast<std::size_t>(groups));
    for (int g = 0; g < groups; ++g) {
      // Quantised draws force frequent cross-group ties.
      frac[g] = static_cast<double>(rng.next_int(0, 4)) * 0.25;
      sizes[g] = static_cast<int>(rng.next_int(0, 4));
    }
    std::vector<std::int64_t> kernel(static_cast<std::size_t>(groups));
    largest_remainder_ranks(frac.data(), sizes.data(), groups,
                            kernel.data());
    const std::vector<std::int64_t> oracle =
        ranks_before_oracle(frac, sizes);
    for (int g = 0; g < groups; ++g) {
      ASSERT_EQ(kernel[static_cast<std::size_t>(g)],
                oracle[static_cast<std::size_t>(g)])
          << "trial " << trial << " g " << g;
    }
  }
}

TEST(RankKernel, InvariantDividerBitwiseMatchesDivision) {
  // The batched share stage replaces x / d with divide(x); the engine's
  // bitwise contract requires exact equality on whichever path the
  // toolchain compiled in (Markstein correction under hardware FMA, plain
  // division otherwise).
  Rng rng(0xD1F1);
  for (int trial = 0; trial < 20000; ++trial) {
    // Magnitudes spanning the Eq. 3 share range and well beyond it.
    const double x = std::ldexp(0.5 + rng.next_double(),
                                static_cast<int>(rng.next_int(-30, 60)));
    const double d = std::ldexp(0.5 + rng.next_double(),
                                static_cast<int>(rng.next_int(-30, 60)));
    const InvariantDivider div(d);
    ASSERT_EQ(div.divide(x), x / d)
        << "trial " << trial << " x " << x << " d " << d
        << " fused " << kInvariantDividerFused;
  }
}

TEST(GroupShares, StarvationEdges) {
  // The closed form must refuse exactly when a rank would starve: base 0
  // with fewer extras than ranks.  Pin both sides of the edge.
  const auto run = [](std::vector<double> w, std::vector<int> sz,
                      std::int64_t pdus) {
    std::vector<GroupShare> shares(w.size());
    return proportional_group_shares(w, sz, pdus, shares);
  };
  // pdus == total ranks with equal weights: every rank gets exactly one
  // (base 0, extras == size everywhere) -- no starvation.
  EXPECT_TRUE(run({1.0, 1.0}, {3, 3}, 6));
  // A tiny-weight group at the remainder boundary: base 0 and the
  // remainder runs out before reaching it.
  EXPECT_FALSE(run({1000.0, 0.001}, {2, 2}, 100));
  // Same weights, enough PDUs that the small group's base rises above 0.
  EXPECT_TRUE(run({1000.0, 0.001}, {2, 2}, 4000000));
  // Starvation must also be detected past the 4-group sorting network, on
  // the inline quadratic path.
  EXPECT_FALSE(
      run({100.0, 100.0, 100.0, 100.0, 0.001}, {1, 1, 1, 1, 2}, 7));
}

class DeltaEvalProperties : public RandomNetworkProperties {};

INSTANTIATE_TEST_SUITE_P(
    Seeds, DeltaEvalProperties,
    ::testing::Values(RandomNetCase{11, 2}, RandomNetCase{12, 3},
                      RandomNetCase{13, 4}, RandomNetCase{14, 5}),
    [](const auto& test_info) {
      return "seed" + std::to_string(test_info.param.seed) + "_k" +
             std::to_string(test_info.param.clusters);
    });

TEST_P(DeltaEvalProperties, DeltaBitwiseMatchesFromScratch) {
  // The delta engine's contract: estimate_delta(c, +/-1) returns the
  // exact FastEstimate estimate_into() computes for the moved
  // configuration -- bitwise on every cost field -- across randomized
  // single-move sequences, including moves that empty a cluster and
  // moves that activate one.
  Rng rng(GetParam().seed ^ 0xDE17A);
  const Network net =
      presets::random_network(rng, GetParam().clusters, 6);
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  Rng config_rng = rng.stream(4);
  for (const auto& [n, overlap] :
       std::vector<std::pair<int, bool>>{{300, false}, {1200, true}}) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = overlap});
    CycleEstimator est(net, cal.db, spec);
    EstimatorScratch scratch;
    DeltaScratch& d = scratch.delta;
    EstimatorScratch ref_scratch;

    // Random non-empty starting configuration.
    ProcessorConfig config(static_cast<std::size_t>(net.num_clusters()),
                           0);
    int total = 0;
    while (total == 0) {
      for (ClusterId c = 0; c < net.num_clusters(); ++c) {
        config[static_cast<std::size_t>(c)] = static_cast<int>(
            config_rng.next_int(0, net.cluster(c).size()));
        total += config[static_cast<std::size_t>(c)];
      }
    }
    const FastEstimate bound = est.bind_delta(config, d, scratch);
    const FastEstimate bound_ref = est.estimate_into(config, ref_scratch);
    ASSERT_EQ(bound.t_c_ms, bound_ref.t_c_ms);

    for (int move = 0; move < 60; ++move) {
      // Probe every legal +/-1 around the current baseline.
      std::vector<std::pair<ClusterId, int>> legal;
      for (ClusterId c = 0; c < net.num_clusters(); ++c) {
        const auto ci = static_cast<std::size_t>(c);
        for (const int delta : {+1, -1}) {
          const int moved = config[ci] + delta;
          if (moved < 0 || moved > net.cluster(c).size()) continue;
          if (total + delta == 0) continue;
          legal.emplace_back(c, delta);
          const FastEstimate got =
              est.estimate_delta(c, delta, d, scratch);
          ProcessorConfig moved_config = config;
          moved_config[ci] = moved;
          const FastEstimate want =
              est.estimate_into(moved_config, ref_scratch);
          ASSERT_EQ(want.t_comp_ms, got.t_comp_ms)
              << "seed " << GetParam().seed << " move " << move << " c "
              << c << " delta " << delta;
          ASSERT_EQ(want.t_comm_ms, got.t_comm_ms)
              << "seed " << GetParam().seed << " move " << move << " c "
              << c << " delta " << delta;
          ASSERT_EQ(want.t_overlap_ms, got.t_overlap_ms)
              << "seed " << GetParam().seed << " move " << move << " c "
              << c << " delta " << delta;
          ASSERT_EQ(want.t_c_ms, got.t_c_ms)
              << "seed " << GetParam().seed << " move " << move << " c "
              << c << " delta " << delta;
          ASSERT_EQ(want.t_elapsed_ms, got.t_elapsed_ms)
              << "seed " << GetParam().seed << " move " << move << " c "
              << c << " delta " << delta;
        }
      }
      ASSERT_FALSE(legal.empty());
      // Commit a random legal move (biased towards draining so the walk
      // visits empty-cluster states) and keep walking.
      const auto& [cc, cd] =
          legal[static_cast<std::size_t>(config_rng.next_int(
              0, static_cast<std::int64_t>(legal.size()) - 1))];
      est.commit_delta(cc, cd, d, scratch);
      config[static_cast<std::size_t>(cc)] += cd;
      total += cd;
      // After a commit the new baseline must itself score bitwise.
      const FastEstimate rebased = est.estimate_delta(cc, 0, d, scratch);
      const FastEstimate rebased_ref =
          est.estimate_into(config, ref_scratch);
      ASSERT_EQ(rebased.t_c_ms, rebased_ref.t_c_ms)
          << "seed " << GetParam().seed << " move " << move;
    }
  }
}

TEST(DeltaEval, EmptyAndRefillCluster) {
  // The splice cases the randomized walk may or may not hit, pinned
  // deterministically: removing the last processor of a cluster (its
  // group vanishes from the gather) and re-activating an empty cluster
  // (a group is inserted), both bitwise against from-scratch.
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  EstimatorScratch scratch;
  DeltaScratch& d = scratch.delta;
  EstimatorScratch ref_scratch;

  est.bind_delta({1, 1}, d, scratch);
  const FastEstimate drained = est.estimate_delta(0, -1, d, scratch);
  const FastEstimate drained_ref = est.estimate_into({0, 1}, ref_scratch);
  EXPECT_EQ(drained.t_c_ms, drained_ref.t_c_ms);
  EXPECT_EQ(drained.t_comm_ms, drained_ref.t_comm_ms);

  est.commit_delta(0, -1, d, scratch);  // baseline now {0, 1}
  const FastEstimate refilled = est.estimate_delta(0, +1, d, scratch);
  const FastEstimate refilled_ref = est.estimate_into({1, 1}, ref_scratch);
  EXPECT_EQ(refilled.t_c_ms, refilled_ref.t_c_ms);
  EXPECT_EQ(refilled.t_comm_ms, refilled_ref.t_comm_ms);

  // Draining the only remaining cluster must be rejected, and the
  // capacity edge must hold on the high side too.
  EXPECT_THROW(est.estimate_delta(1, -1, d, scratch), Error);
  est.commit_delta(0, +1, d, scratch);  // baseline {1, 1}
  EXPECT_THROW(est.estimate_delta(0, net.cluster(0).size(), d, scratch),
               Error);
}

TEST(DeltaEval, CountsEvaluationsAndRequiresBinding) {
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 600, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);
  EstimatorScratch scratch;
  DeltaScratch& d = scratch.delta;
  EXPECT_THROW(est.estimate_delta(0, 1, d, scratch), Error);

  est.bind_delta({3, 2}, d, scratch);
  const std::uint64_t evals_after_bind = scratch.evaluations;
  est.estimate_delta(0, 1, d, scratch);
  est.estimate_delta(1, -1, d, scratch);
  EXPECT_EQ(scratch.evaluations, evals_after_bind + 2);
  EXPECT_GE(scratch.delta_evaluations, 0u);
}

TEST(EstimatorMonotonicity, MoreWorkNeverCheaper) {
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  double prev = 0.0;
  for (const int n : {60, 120, 300, 600, 1200, 2400}) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = n, .iterations = 10, .overlap = false});
    CycleEstimator est(net, cal.db, spec);
    const double tc = est.estimate({6, 6}).t_c_ms;
    EXPECT_GT(tc, prev) << "T_c must grow with problem size at fixed p";
    prev = tc;
  }
}

TEST(EstimatorMonotonicity, ElapsedScalesWithIterations) {
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  const auto elapsed = [&](int iters) {
    const ComputationSpec spec = apps::make_stencil_spec(
        apps::StencilConfig{.n = 600, .iterations = iters,
                            .overlap = false});
    CycleEstimator est(net, cal.db, spec);
    return est.estimate({6, 0}).t_elapsed_ms;
  };
  EXPECT_NEAR(elapsed(20), 2.0 * elapsed(10), 1e-9);
}

}  // namespace
}  // namespace netpart

// Compile-out contract for the npracer annotation macros (DESIGN.md §14).
//
// This TU defines NETPART_RACE_FORCE_OFF before including annotations.hpp,
// so even inside the instrumented `race` build every macro must expand to
// the compiled-out form.  Two properties are pinned:
//
//   1. constexpr-empty: the expansion is a plain discarded expression, so
//      a constexpr function stuffed with annotations still evaluates at
//      compile time (static_assert below -- a build failure, not a test
//      failure, if the contract breaks);
//   2. allocation-free at runtime: executing every macro in a tight loop
//      performs zero heap allocations (operator new is counted).
//
// tier1.sh --race runs this binary from build-race/ deliberately: the
// force-off override must win even when NETPART_RACE_RUNTIME=1.
#define NETPART_RACE_FORCE_OFF 1

#include "analysis/race/annotations.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <mutex>
#include <new>

static_assert(NP_RACE_ACTIVE == 0,
              "NETPART_RACE_FORCE_OFF must force the compiled-out "
              "expansion regardless of NETPART_RACE_RUNTIME");

namespace {

// Every macro in the vocabulary, inside a constexpr function.  If any
// expansion touches the recorder (or anything else not usable in constant
// evaluation), this fails to compile.
constexpr int constexpr_probe() {
  int x = 40;
  NP_READ(&x, "probe.x");
  NP_WRITE(&x, "probe.x");
  NP_LOCK_ACQUIRE(&x, "probe.lock");
  NP_LOCK_RELEASE(&x, "probe.lock");
  NP_LOCK_SCOPE(&x, "probe.lock");
  NP_ATOMIC_ACQUIRE(&x, "probe.flag");
  NP_ATOMIC_RELEASE(&x, "probe.flag");
  NP_ATOMIC_RMW(&x, "probe.flag");
  NP_GUARDED_BY(&x, &x, "probe.guarded");
  NP_BENIGN_RACE(&x, "probe.benign", "constexpr probe");
  NP_THREAD_FORK(&x, "probe.pool");
  NP_THREAD_START(&x, "probe.pool");
  NP_THREAD_END(&x, "probe.pool");
  NP_THREAD_JOIN(&x, "probe.pool");
  return x + 2;
}

static_assert(constexpr_probe() == 42,
              "compiled-out annotation macros must be constexpr-empty");

std::atomic<std::size_t> g_allocations{0};

}  // namespace

// TU-local operator new replacement: counts every heap allocation made by
// this binary.  gtest itself allocates freely, so tests only assert on the
// *delta* across the region under measurement.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

TEST(RaceMacrosOffTest, ActiveFlagIsForcedOff) {
  EXPECT_EQ(NP_RACE_ACTIVE, 0);
}

TEST(RaceMacrosOffTest, MacrosAllocateNothing) {
  int shared = 0;
  std::mutex mutex;
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    NP_GUARDED_BY(&shared, &mutex, "off.guarded");
    NP_LOCK_ACQUIRE(&mutex, "off.mutex");
    NP_READ(&shared, "off.shared");
    NP_WRITE(&shared, "off.shared");
    shared += i;
    NP_LOCK_RELEASE(&mutex, "off.mutex");
    NP_LOCK_SCOPE(&mutex, "off.mutex");
    NP_ATOMIC_ACQUIRE(&shared, "off.flag");
    NP_ATOMIC_RELEASE(&shared, "off.flag");
    NP_ATOMIC_RMW(&shared, "off.flag");
    NP_BENIGN_RACE(&shared, "off.benign", "macros-off loop");
    NP_THREAD_FORK(&shared, "off.pool");
    NP_THREAD_START(&shared, "off.pool");
    NP_THREAD_END(&shared, "off.pool");
    NP_THREAD_JOIN(&shared, "off.pool");
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_GT(shared, 0);  // keep the loop observable
}

TEST(RaceMacrosOffTest, MacrosDiscardSideEffectFreeOperands) {
  // The compiled-out form must still swallow arbitrary address expressions
  // without evaluating surprises at runtime: operands are textually
  // discarded, so an annotation never perturbs control flow.
  int value = 7;
  NP_READ(&value, "off.value");
  NP_WRITE(&value, "off.value");
  EXPECT_EQ(value, 7);
}

}  // namespace

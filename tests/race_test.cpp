// npracer tests (DESIGN.md §14): the vector-clock detector on synthetic
// logs, the recorder's event-ordering contract, the interleaving-
// exploration harness, the annotation-macro fixtures, and the quiet gates
// over the instrumented shipped surfaces.
//
// Layering of the tiers:
//   * Detector + recorder + harness tests run in EVERY build: they drive
//     the analysis machinery directly on synthetic event logs, so they
//     need no compiled-in annotations.
//   * The macro fixtures and the shipped-surface quiet gates need the
//     annotations compiled in (NETPART_RACE=ON, the `race` preset, run by
//     scripts/tier1.sh --race).  Elsewhere they GTEST_SKIP, keeping the
//     test names visible in every tier.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/race/annotations.hpp"
#include "analysis/race/detector.hpp"
#include "analysis/race/harness.hpp"
#include "analysis/race/recorder.hpp"
#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/partitioner.hpp"
#include "net/presets.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "svc/cache.hpp"
#include "svc/service.hpp"

namespace netpart {
namespace {

using analysis::Diagnostic;
using analysis::DiagnosticSink;
using analysis::Severity;
using analysis::race::DetectorOptions;
using analysis::race::Event;
using analysis::race::EventKind;
using analysis::race::ExploreOptions;
using analysis::race::ExploreResult;
using analysis::race::RaceRecorder;
using analysis::race::RecorderOptions;

// --- synthetic-log helpers ------------------------------------------------

/// Synthetic-log builder: thread ids, addresses and sites are script-level
/// fiction; only the detector's happens-before math is under test.
class Log {
 public:
  Log& add(EventKind kind, std::uint32_t thread, const void* addr,
           const char* name, int line, const void* aux = nullptr,
           const char* detail = nullptr) {
    Event event;
    event.kind = kind;
    event.thread = thread;
    event.addr = addr;
    event.aux = aux;
    event.name = name;
    event.detail = detail;
    event.file = "src/fake/surface.cpp";
    event.line = line;
    event.seq = static_cast<std::uint64_t>(events_.size());
    events_.push_back(event);
    return *this;
  }

  Log& read(std::uint32_t t, const void* a, const char* n, int line) {
    return add(EventKind::kRead, t, a, n, line);
  }
  Log& write(std::uint32_t t, const void* a, const char* n, int line) {
    return add(EventKind::kWrite, t, a, n, line);
  }
  Log& acquire(std::uint32_t t, const void* l, const char* n, int line) {
    return add(EventKind::kLockAcquire, t, l, n, line);
  }
  Log& release(std::uint32_t t, const void* l, const char* n, int line) {
    return add(EventKind::kLockRelease, t, l, n, line);
  }

  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

int count_code(const DiagnosticSink& sink, const std::string& code) {
  int n = 0;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == code) ++n;
  }
  return n;
}

std::string first_message(const DiagnosticSink& sink,
                          const std::string& code) {
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == code) return d.message;
  }
  return {};
}

// Distinct addresses for the synthetic logs (the values never matter).
int g_x, g_y, g_lock_a, g_lock_b, g_lock_c, g_flag, g_token;

// --- detector: happens-before --------------------------------------------

TEST(RaceDetectorTest, EmptyLogIsClean) {
  const DiagnosticSink sink = analysis::race::analyze({});
  EXPECT_TRUE(sink.clean());
  EXPECT_TRUE(sink.diagnostics().empty());
}

TEST(RaceDetectorTest, WriteWriteRaceFlagged) {
  Log log;
  log.write(0, &g_x, "x", 10).write(1, &g_x, "x", 20);
  const DiagnosticSink sink = analysis::race::analyze(log.events());
  EXPECT_FALSE(sink.clean());
  EXPECT_EQ(count_code(sink, "NP-R001"), 1);
  const std::string message = first_message(sink, "NP-R001");
  EXPECT_NE(message.find("write-write data race on `x`"), std::string::npos)
      << message;
  EXPECT_NE(message.find("src/fake/surface.cpp:10"), std::string::npos)
      << message;
  EXPECT_NE(message.find("src/fake/surface.cpp:20"), std::string::npos)
      << message;
}

TEST(RaceDetectorTest, ReadWriteRaceFlagged) {
  Log log;
  log.read(0, &g_x, "x", 10).write(1, &g_x, "x", 20);
  const DiagnosticSink sink = analysis::race::analyze(log.events());
  EXPECT_EQ(count_code(sink, "NP-R002"), 1);
  EXPECT_EQ(count_code(sink, "NP-R001"), 0);
  EXPECT_NE(first_message(sink, "NP-R002").find("read-write data race"),
            std::string::npos);
}

TEST(RaceDetectorTest, SameThreadAccessesNeverRace) {
  Log log;
  log.write(0, &g_x, "x", 10)
      .read(0, &g_x, "x", 11)
      .write(0, &g_x, "x", 12);
  EXPECT_TRUE(analysis::race::analyze(log.events()).clean());
}

TEST(RaceDetectorTest, CommonLockOrdersAccesses) {
  Log log;
  log.acquire(0, &g_lock_a, "m", 10)
      .write(0, &g_x, "x", 11)
      .release(0, &g_lock_a, "m", 12)
      .acquire(1, &g_lock_a, "m", 20)
      .write(1, &g_x, "x", 21)
      .read(1, &g_x, "x", 22)
      .release(1, &g_lock_a, "m", 23);
  const DiagnosticSink sink = analysis::race::analyze(log.events());
  EXPECT_TRUE(sink.clean()) << sink.render_text();
}

TEST(RaceDetectorTest, DifferentLocksDoNotOrder) {
  Log log;
  log.acquire(0, &g_lock_a, "a", 10)
      .write(0, &g_x, "x", 11)
      .release(0, &g_lock_a, "a", 12)
      .acquire(1, &g_lock_b, "b", 20)
      .write(1, &g_x, "x", 21)
      .release(1, &g_lock_b, "b", 22);
  EXPECT_EQ(count_code(analysis::race::analyze(log.events()), "NP-R001"), 1);
}

TEST(RaceDetectorTest, AtomicReleaseAcquireOrders) {
  Log log;
  log.write(0, &g_x, "x", 10)
      .add(EventKind::kAtomicRelease, 0, &g_flag, "flag", 11)
      .add(EventKind::kAtomicAcquire, 1, &g_flag, "flag", 20)
      .write(1, &g_x, "x", 21);
  EXPECT_TRUE(analysis::race::analyze(log.events()).clean());
}

TEST(RaceDetectorTest, AtomicRmwChainsOrder) {
  // RMW is both an acquire and a release: a chain of RMWs carries the
  // first thread's writes to the last.
  Log log;
  log.write(0, &g_x, "x", 10)
      .add(EventKind::kAtomicRmw, 0, &g_flag, "flag", 11)
      .add(EventKind::kAtomicRmw, 1, &g_flag, "flag", 20)
      .add(EventKind::kAtomicRmw, 2, &g_flag, "flag", 30)
      .write(2, &g_x, "x", 31);
  EXPECT_TRUE(analysis::race::analyze(log.events()).clean());
}

TEST(RaceDetectorTest, ForkStartEndJoinOrders) {
  Log log;
  log.write(0, &g_x, "x", 10)
      .add(EventKind::kThreadFork, 0, &g_token, "pool", 11)
      .add(EventKind::kThreadStart, 1, &g_token, "pool", 20)
      .write(1, &g_x, "x", 21)
      .add(EventKind::kThreadEnd, 1, &g_token, "pool", 22)
      .add(EventKind::kThreadJoin, 0, &g_token, "pool", 12)
      .read(0, &g_x, "x", 13);
  EXPECT_TRUE(analysis::race::analyze(log.events()).clean());
}

TEST(RaceDetectorTest, MissingJoinEdgeStillRaces) {
  // Fork orders parent-before-child, but without the end/join edge the
  // parent's post-"join" read is unordered against the child's write.
  Log log;
  log.add(EventKind::kThreadFork, 0, &g_token, "pool", 10)
      .add(EventKind::kThreadStart, 1, &g_token, "pool", 20)
      .write(1, &g_x, "x", 21)
      .read(0, &g_x, "x", 11);
  EXPECT_EQ(count_code(analysis::race::analyze(log.events()), "NP-R002"), 1);
}

// --- detector: lock-order graph ------------------------------------------

TEST(RaceDetectorTest, LockOrderCycleFlagged) {
  // AB on thread 0, BA on thread 1: classic inversion.  No deadlock
  // occurred in this log -- the cycle alone is the bug.
  Log log;
  log.acquire(0, &g_lock_a, "a", 10)
      .acquire(0, &g_lock_b, "b", 11)
      .release(0, &g_lock_b, "b", 12)
      .release(0, &g_lock_a, "a", 13)
      .acquire(1, &g_lock_b, "b", 20)
      .acquire(1, &g_lock_a, "a", 21)
      .release(1, &g_lock_a, "a", 22)
      .release(1, &g_lock_b, "b", 23);
  const DiagnosticSink sink = analysis::race::analyze(log.events());
  EXPECT_EQ(count_code(sink, "NP-R003"), 1);
  const std::string message = first_message(sink, "NP-R003");
  EXPECT_NE(message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(message.find("`a`"), std::string::npos);
  EXPECT_NE(message.find("`b`"), std::string::npos);
  // Both acquisition sites of the inversion must be named.
  EXPECT_NE(message.find("src/fake/surface.cpp:11"), std::string::npos)
      << message;
  EXPECT_NE(message.find("src/fake/surface.cpp:21"), std::string::npos)
      << message;
}

TEST(RaceDetectorTest, SingleThreadInversionStillFlagged) {
  // The graph is order-based, not thread-based: one thread taking AB then
  // BA at different times is the same latent deadlock.
  Log log;
  log.acquire(0, &g_lock_a, "a", 10)
      .acquire(0, &g_lock_b, "b", 11)
      .release(0, &g_lock_b, "b", 12)
      .release(0, &g_lock_a, "a", 13)
      .acquire(0, &g_lock_b, "b", 14)
      .acquire(0, &g_lock_a, "a", 15)
      .release(0, &g_lock_a, "a", 16)
      .release(0, &g_lock_b, "b", 17);
  EXPECT_EQ(count_code(analysis::race::analyze(log.events()), "NP-R003"), 1);
}

TEST(RaceDetectorTest, ConsistentLockOrderIsQuiet) {
  Log log;
  log.acquire(0, &g_lock_a, "a", 10)
      .acquire(0, &g_lock_b, "b", 11)
      .release(0, &g_lock_b, "b", 12)
      .release(0, &g_lock_a, "a", 13)
      .acquire(1, &g_lock_a, "a", 20)
      .acquire(1, &g_lock_b, "b", 21)
      .release(1, &g_lock_b, "b", 22)
      .release(1, &g_lock_a, "a", 23);
  const DiagnosticSink sink = analysis::race::analyze(log.events());
  EXPECT_EQ(count_code(sink, "NP-R003"), 0) << sink.render_text();
}

TEST(RaceDetectorTest, ThreeLockCycleReportedOnce) {
  // A->B->C->A across three threads: one component, one report, all
  // three names in it.
  Log log;
  log.acquire(0, &g_lock_a, "a", 10)
      .acquire(0, &g_lock_b, "b", 11)
      .release(0, &g_lock_b, "b", 12)
      .release(0, &g_lock_a, "a", 13)
      .acquire(1, &g_lock_b, "b", 20)
      .acquire(1, &g_lock_c, "c", 21)
      .release(1, &g_lock_c, "c", 22)
      .release(1, &g_lock_b, "b", 23)
      .acquire(2, &g_lock_c, "c", 30)
      .acquire(2, &g_lock_a, "a", 31)
      .release(2, &g_lock_a, "a", 32)
      .release(2, &g_lock_c, "c", 33);
  const DiagnosticSink sink = analysis::race::analyze(log.events());
  EXPECT_EQ(count_code(sink, "NP-R003"), 1);
  const std::string message = first_message(sink, "NP-R003");
  for (const char* name : {"`a`", "`b`", "`c`"}) {
    EXPECT_NE(message.find(name), std::string::npos) << message;
  }
}

// --- detector: guarded-by and lock discipline ----------------------------

TEST(RaceDetectorTest, GuardedByViolationFlagged) {
  Log log;
  log.add(EventKind::kGuardedBy, 0, &g_x, "x", 5, &g_lock_a)
      .acquire(0, &g_lock_a, "m", 10)
      .write(0, &g_x, "x", 11)
      .release(0, &g_lock_a, "m", 12)
      .write(0, &g_x, "x", 20);  // naked: violates the declaration
  const DiagnosticSink sink = analysis::race::analyze(log.events());
  EXPECT_EQ(count_code(sink, "NP-R004"), 1);
  const std::string message = first_message(sink, "NP-R004");
  EXPECT_NE(message.find("NP_GUARDED_BY"), std::string::npos);
  EXPECT_NE(message.find("src/fake/surface.cpp:20"), std::string::npos);
}

TEST(RaceDetectorTest, GuardedAccessWithLockHeldIsQuiet) {
  Log log;
  log.add(EventKind::kGuardedBy, 0, &g_x, "x", 5, &g_lock_a)
      .acquire(1, &g_lock_a, "m", 10)
      .write(1, &g_x, "x", 11)
      .release(1, &g_lock_a, "m", 12);
  EXPECT_TRUE(analysis::race::analyze(log.events()).clean());
}

TEST(RaceDetectorTest, ReleaseWithoutAcquireFlagged) {
  Log log;
  log.release(0, &g_lock_a, "m", 10);
  const DiagnosticSink sink = analysis::race::analyze(log.events());
  EXPECT_EQ(count_code(sink, "NP-R005"), 1);
  EXPECT_NE(first_message(sink, "NP-R005").find("does not hold it"),
            std::string::npos);
}

TEST(RaceDetectorTest, ReacquireOfHeldLockFlagged) {
  Log log;
  log.acquire(0, &g_lock_a, "m", 10).acquire(0, &g_lock_a, "m", 11);
  const DiagnosticSink sink = analysis::race::analyze(log.events());
  EXPECT_EQ(count_code(sink, "NP-R005"), 1);
  EXPECT_NE(first_message(sink, "NP-R005").find("re-acquired"),
            std::string::npos);
}

// --- detector: benign races ----------------------------------------------

TEST(RaceDetectorTest, BenignRaceSuppressesReports) {
  Log log;
  log.add(EventKind::kBenignRace, 0, &g_x, "counter", 5, nullptr,
          "relaxed counter")
      .write(0, &g_x, "counter", 10)
      .write(1, &g_x, "counter", 20);
  const DiagnosticSink sink = analysis::race::analyze(log.events());
  EXPECT_TRUE(sink.clean()) << sink.render_text();
  EXPECT_EQ(count_code(sink, "NP-R001"), 0);
}

TEST(RaceDetectorTest, UnusedBenignNoteIsOptIn) {
  Log log;
  log.add(EventKind::kBenignRace, 0, &g_x, "counter", 5, nullptr,
          "relaxed counter")
      .write(0, &g_x, "counter", 10);  // only ever touched by one thread

  // Default: quiet -- an uncontended run is not evidence of staleness.
  EXPECT_TRUE(analysis::race::analyze(log.events()).diagnostics().empty());

  DetectorOptions options;
  options.report_unused_benign = true;
  const DiagnosticSink sink = analysis::race::analyze(log.events(), options);
  EXPECT_EQ(count_code(sink, "NP-R006"), 1);
  EXPECT_TRUE(sink.clean());  // a note, not an error
  EXPECT_NE(first_message(sink, "NP-R006").find("relaxed counter"),
            std::string::npos);
}

// --- detector: dedup, caps, determinism ----------------------------------

TEST(RaceDetectorTest, RepeatedRacePairReportedOnce) {
  Log log;
  for (int i = 0; i < 50; ++i) {
    log.write(0, &g_x, "x", 10).write(1, &g_x, "x", 20);
  }
  EXPECT_EQ(count_code(analysis::race::analyze(log.events()), "NP-R001"), 1);
}

TEST(RaceDetectorTest, MaxReportsCapsDistinctFindings) {
  Log log;
  // 32 distinct site pairs; only sites distinguish the fingerprints.
  for (int i = 0; i < 32; ++i) {
    log.write(0, &g_x, "x", 100 + 2 * i).write(1, &g_x, "x", 101 + 2 * i);
  }
  DetectorOptions options;
  options.max_reports = 5;
  const DiagnosticSink sink = analysis::race::analyze(log.events(), options);
  EXPECT_EQ(sink.diagnostics().size(), 5u);
}

TEST(RaceDetectorTest, AnalysisIsDeterministic) {
  Log log;
  log.add(EventKind::kGuardedBy, 0, &g_x, "x", 5, &g_lock_a)
      .write(0, &g_x, "x", 10)
      .write(1, &g_x, "x", 20)
      .read(2, &g_x, "x", 30)
      .acquire(0, &g_lock_a, "a", 40)
      .acquire(0, &g_lock_b, "b", 41)
      .release(0, &g_lock_b, "b", 42)
      .release(0, &g_lock_a, "a", 43)
      .acquire(1, &g_lock_b, "b", 50)
      .acquire(1, &g_lock_a, "a", 51)
      .release(1, &g_lock_a, "a", 52)
      .release(1, &g_lock_b, "b", 53);
  const std::string once = analysis::race::analyze(log.events()).render_text();
  const std::string twice =
      analysis::race::analyze(log.events()).render_text();
  EXPECT_EQ(once, twice);
  EXPECT_FALSE(once.empty());
}

// --- recorder -------------------------------------------------------------

TEST(RaceRecorderTest, StartStopLifecycle) {
  RaceRecorder& recorder = RaceRecorder::instance();
  EXPECT_FALSE(RaceRecorder::armed());
  recorder.start();
  EXPECT_TRUE(RaceRecorder::armed());
  recorder.on_event(EventKind::kWrite, &g_x, nullptr, "x", nullptr,
                    "t.cpp", 1);
  EXPECT_EQ(recorder.size(), 1u);
  const std::vector<Event> log = recorder.stop();
  EXPECT_FALSE(RaceRecorder::armed());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].kind, EventKind::kWrite);
  EXPECT_STREQ(log[0].name, "x");
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(RaceRecorderTest, SequenceNumbersAreMonotonic) {
  RaceRecorder& recorder = RaceRecorder::instance();
  recorder.start();
  for (int i = 0; i < 16; ++i) {
    recorder.on_event(EventKind::kRead, &g_x, nullptr, "x", nullptr,
                      "t.cpp", i);
  }
  const std::vector<Event> log = recorder.stop();
  ASSERT_EQ(log.size(), 16u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GT(log[i].seq, log[i - 1].seq);
  }
}

TEST(RaceRecorderTest, CapacityDropsAndCounts) {
  RaceRecorder& recorder = RaceRecorder::instance();
  RecorderOptions options;
  options.capacity = 4;
  recorder.start(options);
  for (int i = 0; i < 10; ++i) {
    recorder.on_event(EventKind::kRead, &g_x, nullptr, "x", nullptr,
                      "t.cpp", i);
  }
  EXPECT_EQ(recorder.dropped(), 6u);
  EXPECT_EQ(recorder.stop().size(), 4u);
}

TEST(RaceRecorderTest, SessionBumpsOnEveryStart) {
  RaceRecorder& recorder = RaceRecorder::instance();
  recorder.start();
  const std::uint64_t first = recorder.session();
  recorder.stop();
  recorder.start();
  EXPECT_GT(recorder.session(), first);
  recorder.stop();
}

TEST(RaceRecorderTest, LockScopePairsAcquireAndRelease) {
  RaceRecorder& recorder = RaceRecorder::instance();
  recorder.start();
  {
    analysis::race::LockScope scope(&g_lock_a, "m", "t.cpp", 1);
  }
  const std::vector<Event> log = recorder.stop();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].kind, EventKind::kLockAcquire);
  EXPECT_EQ(log[1].kind, EventKind::kLockRelease);
  EXPECT_EQ(log[0].addr, log[1].addr);
}

TEST(RaceRecorderTest, LockScopeNeverFabricatesUnpairedRelease) {
  RaceRecorder& recorder = RaceRecorder::instance();
  recorder.start();
  {
    analysis::race::LockScope scope(&g_lock_a, "m", "t.cpp", 1);
    recorder.stop();
    recorder.start();  // new session begins mid-scope
  }
  // The acquire predates the current session, so the destructor must not
  // emit a release the new log has no acquire for.
  const std::vector<Event> log = recorder.stop();
  EXPECT_TRUE(log.empty());
}

TEST(RaceRecorderTest, ThreadsGetDistinctIds) {
  const std::uint32_t main_id = analysis::race::race_thread_id();
  std::uint32_t other_id = main_id;
  std::thread t([&] { other_id = analysis::race::race_thread_id(); });
  t.join();
  EXPECT_NE(main_id, other_id);
  // Stable within a thread.
  EXPECT_EQ(analysis::race::race_thread_id(), main_id);
}

TEST(RaceRecorderTest, EventsCarrySpanContext) {
  // np_obs registers the context probe at static init; an annotation that
  // fires inside an active span must carry that span's ids so race
  // reports can attribute both stacks.
  obs::TelemetryRegistry registry(/*enabled=*/true);
  RaceRecorder& recorder = RaceRecorder::instance();
  recorder.start();
  {
    obs::Span span(registry, "race.test", "test");
    recorder.on_event(EventKind::kWrite, &g_x, nullptr, "x", nullptr,
                      "t.cpp", 1);
  }
  recorder.on_event(EventKind::kWrite, &g_x, nullptr, "x", nullptr,
                    "t.cpp", 2);
  const std::vector<Event> all = recorder.stop();
  // In the instrumented build the registry's own annotations (e.g. the
  // span destructor's record_span lock scope) land in the log too; keep
  // only the two synthetic events this test emitted.
  std::vector<Event> log;
  for (const Event& e : all) {
    if (e.addr == static_cast<const void*>(&g_x)) log.push_back(e);
  }
  ASSERT_EQ(log.size(), 2u);
  EXPECT_NE(log[0].trace_id, 0u);
  EXPECT_NE(log[0].span_id, 0u);
  EXPECT_EQ(log[1].trace_id, 0u);  // no active span
}

// --- harness --------------------------------------------------------------

TEST(RaceHarnessTest, RunsEverySchedule) {
  ExploreOptions options;
  options.schedules = 5;
  std::vector<std::uint64_t> seeds;
  const ExploreResult result = analysis::race::explore(
      [&](std::uint64_t seed) { seeds.push_back(seed); }, options);
  EXPECT_EQ(result.schedules, 5);
  ASSERT_EQ(seeds.size(), 5u);
  EXPECT_EQ(std::set<std::uint64_t>(seeds.begin(), seeds.end()).size(), 5u)
      << "schedule seeds must be distinct";
}

TEST(RaceHarnessTest, FindingsDedupAcrossSchedules) {
  // The same racy site pair fires in every schedule; the merged result
  // must carry it exactly once.
  ExploreOptions options;
  options.schedules = 4;
  const ExploreResult result = analysis::race::explore(
      [](std::uint64_t) {
        RaceRecorder& recorder = RaceRecorder::instance();
        std::thread t([&] {
          recorder.on_event(EventKind::kWrite, &g_y, nullptr, "y", nullptr,
                            "t.cpp", 10);
        });
        t.join();
        recorder.on_event(EventKind::kWrite, &g_y, nullptr, "y", nullptr,
                          "t.cpp", 20);
      },
      options);
  EXPECT_EQ(count_code(result.sink, "NP-R001"), 1);
  EXPECT_GE(result.events, 8u);
}

TEST(RaceHarnessTest, QuietScenarioStaysQuiet) {
  ExploreOptions options;
  options.schedules = 3;
  const ExploreResult result = analysis::race::explore(
      [](std::uint64_t) {
        RaceRecorder& recorder = RaceRecorder::instance();
        recorder.on_event(EventKind::kThreadFork, &g_token, nullptr, "pool",
                          nullptr, "t.cpp", 1);
        std::thread t([&] {
          recorder.on_event(EventKind::kThreadStart, &g_token, nullptr,
                            "pool", nullptr, "t.cpp", 2);
          recorder.on_event(EventKind::kWrite, &g_y, nullptr, "y", nullptr,
                            "t.cpp", 3);
          recorder.on_event(EventKind::kThreadEnd, &g_token, nullptr, "pool",
                            nullptr, "t.cpp", 4);
        });
        t.join();
        recorder.on_event(EventKind::kThreadJoin, &g_token, nullptr, "pool",
                          nullptr, "t.cpp", 5);
        recorder.on_event(EventKind::kRead, &g_y, nullptr, "y", nullptr,
                          "t.cpp", 6);
      },
      options);
  EXPECT_TRUE(result.sink.clean()) << result.sink.render_text();
  EXPECT_EQ(result.schedules, 3);
}

// --- annotation-macro fixtures (need NETPART_RACE=ON) ---------------------

#if NP_RACE_ACTIVE
constexpr bool kMacrosActive = true;
#else
constexpr bool kMacrosActive = false;
#endif

#define NP_RACE_REQUIRE_ACTIVE()                                   \
  do {                                                             \
    if (!kMacrosActive) {                                          \
      GTEST_SKIP()                                                 \
          << "annotations compiled out; run via tier1.sh --race";  \
    }                                                              \
  } while (0)

TEST(RaceFixtureTest, UnsynchronisedWritesAreFlagged) {
  NP_RACE_REQUIRE_ACTIVE();
  // The underlying storage is a relaxed atomic so the *fixture* has no
  // real UB; the annotation layer still sees two unordered writes, which
  // is exactly the contract under test.
  std::atomic<int> cell{0};
  RaceRecorder::instance().start();
  std::thread t([&] {
    NP_WRITE(&cell, "fixture.cell");
    cell.store(1, std::memory_order_relaxed);
  });
  NP_WRITE(&cell, "fixture.cell");
  cell.store(2, std::memory_order_relaxed);
  t.join();
  const DiagnosticSink sink =
      analysis::race::analyze(RaceRecorder::instance().stop());
  EXPECT_EQ(count_code(sink, "NP-R001"), 1) << sink.render_text();
}

TEST(RaceFixtureTest, LockScopeMacroOrdersWrites) {
  NP_RACE_REQUIRE_ACTIVE();
  std::mutex mutex;
  int shared = 0;
  RaceRecorder::instance().start();
  auto guarded_bump = [&] {
    std::lock_guard lock(mutex);
    NP_LOCK_SCOPE(&mutex, "fixture.mutex");
    NP_WRITE(&shared, "fixture.shared");
    ++shared;
  };
  std::thread t(guarded_bump);
  guarded_bump();
  t.join();
  const DiagnosticSink sink =
      analysis::race::analyze(RaceRecorder::instance().stop());
  EXPECT_TRUE(sink.clean()) << sink.render_text();
  EXPECT_EQ(shared, 2);
}

TEST(RaceFixtureTest, LockOrderInversionFlaggedWithoutDeadlocking) {
  NP_RACE_REQUIRE_ACTIVE();
  // One thread takes AB then BA *sequentially* -- no deadlock can occur
  // in the run, but the recorded order graph has the cycle.
  std::mutex a, b;
  RaceRecorder::instance().start();
  {
    std::lock_guard la(a);
    NP_LOCK_SCOPE(&a, "fixture.lock_a");
    std::lock_guard lb(b);
    NP_LOCK_SCOPE(&b, "fixture.lock_b");
  }
  {
    std::lock_guard lb(b);
    NP_LOCK_SCOPE(&b, "fixture.lock_b");
    std::lock_guard la(a);
    NP_LOCK_SCOPE(&a, "fixture.lock_a");
  }
  const DiagnosticSink sink =
      analysis::race::analyze(RaceRecorder::instance().stop());
  EXPECT_EQ(count_code(sink, "NP-R003"), 1) << sink.render_text();
}

TEST(RaceFixtureTest, GuardedByMacroCatchesNakedAccess) {
  NP_RACE_REQUIRE_ACTIVE();
  std::mutex mutex;
  int shared = 0;
  RaceRecorder::instance().start();
  NP_GUARDED_BY(&shared, &mutex, "fixture.shared");
  {
    std::lock_guard lock(mutex);
    NP_LOCK_SCOPE(&mutex, "fixture.mutex");
    NP_WRITE(&shared, "fixture.shared");
    shared = 1;
  }
  NP_READ(&shared, "fixture.shared");  // naked read: violation
  EXPECT_EQ(shared, 1);
  const DiagnosticSink sink =
      analysis::race::analyze(RaceRecorder::instance().stop());
  EXPECT_EQ(count_code(sink, "NP-R004"), 1) << sink.render_text();
}

TEST(RaceFixtureTest, BenignRaceMacroSuppresses) {
  NP_RACE_REQUIRE_ACTIVE();
  std::atomic<int> counter{0};
  RaceRecorder::instance().start();
  NP_BENIGN_RACE(&counter, "fixture.counter",
                 "test double of a relaxed stats counter");
  std::thread t([&] {
    NP_WRITE(&counter, "fixture.counter");
    counter.fetch_add(1, std::memory_order_relaxed);
  });
  NP_WRITE(&counter, "fixture.counter");
  counter.fetch_add(1, std::memory_order_relaxed);
  t.join();
  const DiagnosticSink sink =
      analysis::race::analyze(RaceRecorder::instance().stop());
  EXPECT_TRUE(sink.clean()) << sink.render_text();
}

TEST(RaceFixtureTest, AtomicHandoffMacrosCreateTheEdge) {
  NP_RACE_REQUIRE_ACTIVE();
  std::atomic<bool> ready{false};
  int payload = 0;
  RaceRecorder::instance().start();
  std::thread consumer([&] {
    NP_ATOMIC_ACQUIRE(&ready, "fixture.ready");
    while (!ready.load(std::memory_order_acquire)) {
      NP_ATOMIC_ACQUIRE(&ready, "fixture.ready");
      std::this_thread::yield();
    }
    NP_READ(&payload, "fixture.payload");
    EXPECT_EQ(payload, 42);
  });
  NP_WRITE(&payload, "fixture.payload");
  payload = 42;
  NP_ATOMIC_RELEASE(&ready, "fixture.ready");
  ready.store(true, std::memory_order_release);
  consumer.join();
  const DiagnosticSink sink =
      analysis::race::analyze(RaceRecorder::instance().stop());
  EXPECT_TRUE(sink.clean()) << sink.render_text();
}

// --- quiet gates over the instrumented shipped surfaces -------------------
//
// These are the hard zero-findings gates tier1.sh --race enforces: every
// explored schedule of each surface must analyze clean.  A finding here is
// either a real concurrency bug or a missing/wrong annotation -- both are
// ship blockers.

TEST(RaceQuietGateTest, DecisionCacheShards) {
  NP_RACE_REQUIRE_ACTIVE();
  ExploreOptions options;
  options.schedules = 6;
  const ExploreResult result = analysis::race::explore(
      [](std::uint64_t seed) {
        svc::DecisionCache cache(/*capacity=*/64, /*shards=*/4);
        constexpr int kThreads = 4;
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
          threads.emplace_back([&cache, seed, t] {
            for (std::uint64_t i = 0; i < 40; ++i) {
              const std::uint64_t key = (seed + i * 7 + t) % 32;
              if (auto hit = cache.lookup(key); hit == nullptr) {
                auto decision = std::make_shared<svc::PartitionDecision>();
                decision->key = key;
                decision->epoch = 1;
                cache.insert(std::move(decision));
              }
              if (i % 8 == 0) cache.stats();
            }
          });
        }
        for (std::thread& t : threads) t.join();
        cache.invalidate_before(2);
        cache.shard_stats();
      },
      options);
  EXPECT_TRUE(result.sink.clean()) << result.sink.render_text();
  EXPECT_EQ(result.dropped, 0u);
}

TEST(RaceQuietGateTest, PartitionServiceWorkerPool) {
  NP_RACE_REQUIRE_ACTIVE();
  const Network net = presets::paper_testbed();
  const CostModelDb db(net.num_clusters());  // cold_override bypasses it
  ExploreOptions options;
  options.schedules = 4;
  const ExploreResult result = analysis::race::explore(
      [&](std::uint64_t seed) {
        AvailabilityFeed feed(net,
                              make_managers(net, AvailabilityPolicy{}));
        svc::ServiceOptions service_options;
        service_options.workers = 3;
        service_options.queue_capacity = 64;
        service_options.cold_override =
            [](const svc::PartitionRequest& request,
               const AvailabilitySnapshot&) {
              svc::PartitionDecision decision;
              decision.partition = PartitionVector({request.n});
              return decision;
            };
        svc::PartitionService service(net, db, feed, nullptr,
                                      service_options);
        constexpr int kClients = 3;
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (int c = 0; c < kClients; ++c) {
          clients.emplace_back([&service, seed, c] {
            for (int i = 0; i < 12; ++i) {
              svc::PartitionRequest request;
              request.spec = "stencil";
              request.n = 100 + static_cast<std::int64_t>(
                                    (seed + c * 5 + i) % 8);
              request.iterations = 10;
              const svc::ServiceReply reply = service.query(request);
              ASSERT_EQ(reply.status, svc::ServiceStatus::Ok)
                  << reply.error;
            }
          });
        }
        for (std::thread& t : clients) t.join();
      },  // service joins its workers here; all events stay in-schedule
      options);
  EXPECT_TRUE(result.sink.clean()) << result.sink.render_text();
}

TEST(RaceQuietGateTest, ExhaustiveSweepWorkStealing) {
  NP_RACE_REQUIRE_ACTIVE();
  // Calibrate once; the sweep itself is what is under observation.
  struct Bed {
    Network net = presets::paper_testbed();
    CalibrationResult calib = calibrate(net, [] {
      CalibrationParams params;
      params.topologies = {Topology::OneD};
      return params;
    }());
  };
  static const Bed* bed = new Bed;
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 900, .iterations = 10});
  const CycleEstimator estimator(bed->net, bed->calib.db, spec);
  const AvailabilitySnapshot snapshot = gather_availability(
      bed->net, make_managers(bed->net, AvailabilityPolicy{}));
  ExploreOptions options;
  options.schedules = 4;
  const ExploreResult result = analysis::race::explore(
      [&](std::uint64_t seed) {
        ExhaustiveOptions sweep;
        sweep.threads = 4;
        sweep.chunk = 64;  // small chunks stress the steal protocol
        sweep.chaos_yield_seed = seed;
        exhaustive_partition(estimator, snapshot, sweep);
      },
      options);
  EXPECT_TRUE(result.sink.clean()) << result.sink.render_text();
}

TEST(RaceQuietGateTest, TelemetryRegistry) {
  NP_RACE_REQUIRE_ACTIVE();
  ExploreOptions options;
  options.schedules = 4;
  const ExploreResult result = analysis::race::explore(
      [](std::uint64_t seed) {
        obs::TelemetryRegistry registry(/*enabled=*/true);
        constexpr int kThreads = 3;
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
          threads.emplace_back([&registry, seed, t] {
            obs::Counter& counter = registry.counter("gate.counter");
            obs::LatencyHistogram& latency =
                registry.latency("gate.latency", 0.0, 100.0, 16);
            for (int i = 0; i < 25; ++i) {
              counter.add(1);
              latency.record(static_cast<double>((seed + i + t) % 90));
              registry.record_span(obs::SpanRecord{});
              if (i % 10 == 0) {
                registry.snapshot();
                registry.span_count();
              }
            }
          });
        }
        for (std::thread& t : threads) t.join();
        registry.metrics_text();
        registry.spans();
      },
      options);
  EXPECT_TRUE(result.sink.clean()) << result.sink.render_text();
}

}  // namespace
}  // namespace netpart

// Tests for the tree-reduction application.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/reduce.hpp"
#include "core/decompose.hpp"
#include "exec/executor.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

const Network& testbed() {
  static const Network net = presets::paper_testbed();
  return net;
}

TEST(ReduceTest, SpecUsesTreeTopology) {
  const ComputationSpec spec =
      apps::make_reduce_spec(apps::ReduceConfig{.count = 1000,
                                                .iterations = 5});
  EXPECT_EQ(spec.dominant_communication().topology(), Topology::Tree);
  EXPECT_EQ(spec.dominant_communication().bytes_per_message(100), 8);
  EXPECT_EQ(spec.num_pdus(), 1000);
}

TEST(ReduceTest, DistributedSumMatchesSequential) {
  const apps::ReduceConfig cfg{.count = 5000, .iterations = 3};
  for (const ProcessorConfig& config :
       {ProcessorConfig{1, 0}, ProcessorConfig{3, 2},
        ProcessorConfig{6, 6}}) {
    const Placement placement = contiguous_placement(testbed(), config);
    const PartitionVector part = balanced_partition(
        testbed(), config, clusters_by_speed(testbed()), cfg.count);
    const auto dist =
        apps::run_distributed_reduce(testbed(), placement, part, cfg);
    const double expected =
        apps::sequential_sum(apps::make_reduce_input(cfg.count, 2));
    // Tree combination reassociates: exact to within accumulated eps.
    EXPECT_NEAR(dist.value, expected, 1e-9 * cfg.count);
    EXPECT_GT(dist.elapsed.as_millis(), 0.0);
  }
}

TEST(ReduceTest, MessageCountMatchesTreeEdges) {
  const apps::ReduceConfig cfg{.count = 4000, .iterations = 4};
  const ProcessorConfig config{5, 0};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part = balanced_partition(
      testbed(), config, clusters_by_speed(testbed()), cfg.count);
  const auto dist =
      apps::run_distributed_reduce(testbed(), placement, part, cfg);
  // p-1 tree edges, one upward message each, per iteration.
  EXPECT_EQ(dist.messages, 4u * 4u);
}

TEST(ReduceTest, ExecutorRunsTreeTopology) {
  const apps::ReduceConfig cfg{.count = 100000, .iterations = 10};
  const ComputationSpec spec = apps::make_reduce_spec(cfg);
  const ProcessorConfig config{6, 4};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part = balanced_partition(
      testbed(), config, clusters_by_speed(testbed()), cfg.count);
  const ExecutionResult r = execute(testbed(), spec, placement, part, {});
  EXPECT_GT(r.elapsed.as_millis(), 0.0);
  // 2(p-1) messages per cycle for the symmetric tree exchange.
  EXPECT_EQ(r.messages_delivered, 10u * 2u * 9u);
}

TEST(ReduceTest, StartupScatterMeasured) {
  const apps::ReduceConfig cfg{.count = 50000, .iterations = 5};
  const ComputationSpec spec = apps::make_reduce_spec(cfg);
  const ProcessorConfig config{4, 0};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part = balanced_partition(
      testbed(), config, clusters_by_speed(testbed()), cfg.count);
  ExecutionOptions options;
  options.pdu_bytes = 8;
  const ExecutionResult r = execute(testbed(), spec, placement, part,
                                    options);
  EXPECT_GT(r.startup, SimTime::zero());
  const ExecutionResult no_startup =
      execute(testbed(), spec, placement, part, {});
  EXPECT_EQ(no_startup.startup, SimTime::zero());
  // The iteration time itself is unaffected by measuring startup.
  EXPECT_EQ(r.elapsed, no_startup.elapsed);
}

}  // namespace
}  // namespace netpart

// Partition-service concurrency tests (DESIGN.md §8).
//
// The service's promises are concurrency promises, so the tests are
// thread-shaped: N clients hammer mixed hot/cold request streams and the
// assertions are about what must NOT multiply (cold computes per unique
// key), what must NOT survive (decisions across an epoch bump), and what
// must NOT block (admission when the queue is full, shutdown with a full
// queue).  The chaos-seeded cases reuse the deterministic fault machinery
// from sim/faults.hpp: each seed yields one reproducible schedule of
// cold-path faults and availability churn.
//
// This file is part of the TSan tier (scripts/tier1.sh --tsan): every test
// here must stay free of reported races.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/decompose.hpp"
#include "exec/adaptive.hpp"
#include "exec/executor.hpp"
#include "exec/load.hpp"
#include "net/presets.hpp"
#include "sim/faults.hpp"
#include "svc/client.hpp"
#include "svc/service.hpp"

namespace netpart {
namespace {

ComputationSpec resolve_stencil(const svc::PartitionRequest& request) {
  return apps::make_stencil_spec(apps::StencilConfig{
      .n = static_cast<int>(request.n), .iterations = request.iterations});
}

svc::PartitionRequest stencil_request(std::int64_t n) {
  svc::PartitionRequest request;
  request.spec = "stencil";
  request.n = n;
  request.iterations = 10;
  return request;
}

/// Calibrated paper testbed shared by every test (calibration is the slow
/// part; the tests only need *a* valid cost model).
struct Testbed {
  Network net = presets::paper_testbed();
  CostModelDb db;
  Testbed() : db(net.num_clusters()) {
    CalibrationParams params;
    params.topologies = {Topology::OneD};
    db = calibrate(net, params).db;
  }
};

const Testbed& testbed() {
  static const Testbed kBed;
  return kBed;
}

AvailabilityFeed make_feed(const Network& net) {
  return AvailabilityFeed(net,
                          make_managers(net, AvailabilityPolicy{}));
}

/// Thread-safe per-key invocation counter for cold_override hooks.
class ColdCounter {
 public:
  void bump(std::int64_t n) {
    std::lock_guard lock(mutex_);
    ++counts_[n];
  }
  std::map<std::int64_t, int> snapshot() const {
    std::lock_guard lock(mutex_);
    return counts_;
  }
  int total() const {
    std::lock_guard lock(mutex_);
    int sum = 0;
    for (const auto& [n, c] : counts_) sum += c;
    return sum;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::int64_t, int> counts_;
};

TEST(ServiceTest, ColdThenHitReturnsSameDecision) {
  const Testbed& bed = testbed();
  AvailabilityFeed feed = make_feed(bed.net);
  svc::PartitionService service(bed.net, bed.db, feed, resolve_stencil);

  const svc::ServiceReply cold = service.query(stencil_request(600));
  ASSERT_EQ(cold.status, svc::ServiceStatus::Ok) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_NE(cold.decision, nullptr);
  EXPECT_EQ(cold.decision->partition.total(), 600);
  EXPECT_EQ(cold.decision->epoch, feed.epoch());

  const svc::ServiceReply hit = service.query(stencil_request(600));
  ASSERT_EQ(hit.status, svc::ServiceStatus::Ok);
  EXPECT_TRUE(hit.cache_hit);
  // Literally the same decision object, not a recomputation.
  EXPECT_EQ(hit.decision.get(), cold.decision.get());
  EXPECT_EQ(service.cache().stats().hits, 1u);
}

// (1) Coalescing: clients * rounds requests over a tiny key universe, with
// a deliberately slow cold path to widen the in-flight window.  Every
// request must succeed and each unique key must be computed exactly once.
TEST(ServiceTest, StressColdComputedOncePerKey) {
  const Testbed& bed = testbed();
  AvailabilityFeed feed = make_feed(bed.net);

  ColdCounter colds;
  svc::ServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 1024;
  options.cold_override = [&colds](const svc::PartitionRequest& request,
                                   const AvailabilitySnapshot&) {
    colds.bump(request.n);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    svc::PartitionDecision decision;
    decision.partition = PartitionVector({request.n});
    return decision;
  };
  svc::PartitionService service(bed.net, bed.db, feed, resolve_stencil,
                                options);

  constexpr int kClients = 8;
  constexpr int kRounds = 40;
  constexpr int kUniverse = 5;
  std::atomic<int> ok{0}, other{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        const std::int64_t n = 100 + (c + r) % kUniverse;
        const svc::ServiceReply reply = service.query(stencil_request(n));
        (reply.status == svc::ServiceStatus::Ok ? ok : other)++;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(ok.load(), kClients * kRounds);
  EXPECT_EQ(other.load(), 0);
  const auto counts = colds.snapshot();
  EXPECT_EQ(counts.size(), static_cast<std::size_t>(kUniverse));
  for (const auto& [n, count] : counts) {
    EXPECT_EQ(count, 1) << "key n=" << n << " computed " << count
                        << " times despite coalescing";
  }
  const auto stats = service.cache().stats();
  EXPECT_EQ(stats.hits + service.metrics().counter("coalesced").value() +
                static_cast<std::uint64_t>(kUniverse),
            static_cast<std::uint64_t>(kClients * kRounds));
}

// (2) Epoch bump: a cached decision must not survive an availability
// change -- the next query recomputes under the new epoch and the stale
// entry is reclaimed.
TEST(ServiceTest, EpochBumpInvalidatesCachedDecisions) {
  const Testbed& bed = testbed();
  AvailabilityFeed feed = make_feed(bed.net);
  svc::PartitionService service(bed.net, bed.db, feed, resolve_stencil);

  const svc::ServiceReply first = service.query(stencil_request(300));
  ASSERT_EQ(first.status, svc::ServiceStatus::Ok) << first.error;
  const std::uint64_t epoch_before = feed.epoch();

  // Revoke one processor: counts change, epoch must bump.
  AvailabilitySnapshot next = feed.read().first;
  ASSERT_GT(next.available[0], 1);
  next.available[0] -= 1;
  const std::uint64_t epoch_after = feed.update(std::move(next));
  ASSERT_GT(epoch_after, epoch_before);

  const svc::ServiceReply second = service.query(stencil_request(300));
  ASSERT_EQ(second.status, svc::ServiceStatus::Ok) << second.error;
  EXPECT_FALSE(second.cache_hit) << "stale decision served after bump";
  EXPECT_EQ(second.decision->epoch, epoch_after);
  EXPECT_NE(second.decision.get(), first.decision.get());
  EXPECT_GE(service.cache().stats().invalidated, 1u);
  EXPECT_GE(service.metrics().counter("epoch_bumps").value(), 1u);

  // An identical re-gather must NOT bump: the cache stays warm.
  feed.update(feed.read().first);
  const svc::ServiceReply third = service.query(stencil_request(300));
  EXPECT_TRUE(third.cache_hit);
}

// (3) Overload: a tiny queue behind a deliberately slow single worker.
// Excess load must shed with Overloaded immediately -- not block, not
// deadlock -- and the service must still drain and destruct cleanly.
TEST(ServiceTest, OverloadShedsInsteadOfBlocking) {
  const Testbed& bed = testbed();
  AvailabilityFeed feed = make_feed(bed.net);

  svc::ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.cold_override = [](const svc::PartitionRequest& request,
                             const AvailabilitySnapshot&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    svc::PartitionDecision decision;
    decision.partition = PartitionVector({request.n});
    return decision;
  };
  svc::PartitionService service(bed.net, bed.db, feed, resolve_stencil,
                                options);

  // Submit far more distinct cold keys than the queue admits, from many
  // threads at once.  submit() never blocks, so the whole burst returns
  // quickly even though the worker needs ~5ms per admitted job.
  constexpr int kClients = 8;
  constexpr int kPerClient = 10;
  std::mutex mutex;
  std::vector<std::shared_future<svc::ServiceReply>> futures;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        auto f = service.submit(
            stencil_request(1000 + c * kPerClient + r));
        std::lock_guard lock(mutex);
        futures.push_back(std::move(f));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  int ok = 0, shed = 0, failed = 0;
  for (auto& f : futures) {
    const svc::ServiceReply reply = f.get();  // must all resolve
    switch (reply.status) {
      case svc::ServiceStatus::Ok: ++ok; break;
      case svc::ServiceStatus::Overloaded: ++shed; break;
      case svc::ServiceStatus::Failed: ++failed; break;
    }
  }
  EXPECT_EQ(ok + shed + failed, kClients * kPerClient);
  EXPECT_EQ(failed, 0);
  EXPECT_GT(shed, 0) << "queue of 2 absorbed an 80-request burst";
  EXPECT_GT(ok, 0) << "admission shed everything";
  EXPECT_EQ(service.metrics().counter("shed_overload").value(),
            static_cast<std::uint64_t>(shed));
  // Destructor drains the remaining queue without deadlock (implicitly
  // verified by leaving scope; a hang here fails the test by timeout).
}

// Chaos tier: seeded fault injection on the cold partition path plus
// availability churn from the same plan.  Faults surface as Failed replies
// (shared by every coalesced waiter), are never cached, and the service
// keeps answering across epochs.
TEST(ServiceTest, ChaosSeedsFaultyColdPathStaysConsistent) {
  const Testbed& bed = testbed();

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::ChaosRng chaos(seed);
    sim::ChaosOptions chaos_options;
    chaos_options.crashes = 1;
    chaos_options.revocations = 2;
    chaos_options.control_horizon = SimTime::seconds(1);
    const sim::FaultPlan plan = chaos.make_plan(bed.net, chaos_options);
    const std::vector<ChurnEvent> churn = plan.churn_events();

    AvailabilityFeed feed = make_feed(bed.net);

    // The fault schedule for the cold path itself: every 7th cold compute
    // throws (seed-rotated so different seeds fault different keys).
    std::atomic<std::uint64_t> cold_calls{0};
    ColdCounter colds;
    svc::ServiceOptions options;
    options.workers = 2;
    options.queue_capacity = 256;
    options.cold_override =
        [&](const svc::PartitionRequest& request,
            const AvailabilitySnapshot& snapshot) {
      colds.bump(request.n);
      const std::uint64_t call =
          cold_calls.fetch_add(1, std::memory_order_relaxed);
      if ((call + seed) % 7 == 0) {
        throw Error("injected cold-path fault");
      }
      // Respect the churned availability like the real path would.
      std::int64_t procs = 0;
      for (int a : snapshot.available) procs += a;
      if (procs <= 0) throw Error("no processors available");
      svc::PartitionDecision decision;
      decision.partition = PartitionVector({request.n});
      return decision;
    };
    svc::PartitionService service(bed.net, bed.db, feed, resolve_stencil,
                                  options);

    std::atomic<int> ok{0}, failed{0}, overloaded{0};
    constexpr int kClients = 6;
    constexpr int kRounds = 30;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int r = 0; r < kRounds; ++r) {
          // Mid-stream, one client replays the plan's churn into the feed
          // (epoch bumps race with in-flight requests by design).
          if (c == 0 && r == kRounds / 2 && !churn.empty()) {
            feed.apply_churn_events(bed.net, churn, SimTime::max());
          }
          const std::int64_t n = 200 + (c * kRounds + r) % 6;
          const svc::ServiceReply reply = service.query(stencil_request(n));
          switch (reply.status) {
            case svc::ServiceStatus::Ok:
              ++ok;
              break;
            case svc::ServiceStatus::Failed:
              ++failed;
              EXPECT_FALSE(reply.error.empty());
              break;
            case svc::ServiceStatus::Overloaded:
              ++overloaded;
              break;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();

    EXPECT_EQ(ok + failed + overloaded, kClients * kRounds)
        << "seed " << seed;
    EXPECT_GT(ok.load(), 0) << "seed " << seed;
    // Failures are not cached: with faults on the path, cold computes may
    // exceed the unique-key count, but every extra compute is explained by
    // a cold-path failure, an epoch bump (new keys), or a stale-epoch
    // straggler -- a client that read the feed just before a bump may
    // submit an old-epoch key after invalidation reclaimed its entry, and
    // each client can straggle at most once per bump.
    const std::uint64_t bumps =
        service.metrics().counter("epoch_bumps").value();
    const std::uint64_t cold_failures =
        service.metrics().counter("failed").value();
    EXPECT_LE(colds.total(),
              6 * static_cast<int>(1 + bumps) +
                  static_cast<int>(cold_failures) +
                  kClients * static_cast<int>(bumps))
        << "seed " << seed;
    // One failed cold compute fans out to every coalesced waiter, so the
    // counter bounds the Failed replies from below.
    EXPECT_LE(cold_failures, static_cast<std::uint64_t>(failed.load()))
        << "seed " << seed;
    if (failed.load() > 0) {
      EXPECT_GT(cold_failures, 0u) << "seed " << seed;
    }
  }
}

// A fault is transient: after it clears, the same key must recompute
// successfully (failures were not cached) and then hit.
TEST(ServiceTest, FailedDecisionsAreNotCached) {
  const Testbed& bed = testbed();
  AvailabilityFeed feed = make_feed(bed.net);

  std::atomic<bool> faulty{true};
  svc::ServiceOptions options;
  options.cold_override = [&faulty](const svc::PartitionRequest& request,
                                    const AvailabilitySnapshot&) {
    if (faulty.load()) throw Error("injected fault");
    svc::PartitionDecision decision;
    decision.partition = PartitionVector({request.n});
    return decision;
  };
  svc::PartitionService service(bed.net, bed.db, feed, resolve_stencil,
                                options);

  const svc::ServiceReply broken = service.query(stencil_request(42));
  EXPECT_EQ(broken.status, svc::ServiceStatus::Failed);
  EXPECT_NE(broken.error.find("injected fault"), std::string::npos);
  EXPECT_EQ(service.cache().size(), 0u);

  faulty.store(false);
  const svc::ServiceReply healed = service.query(stencil_request(42));
  ASSERT_EQ(healed.status, svc::ServiceStatus::Ok) << healed.error;
  EXPECT_FALSE(healed.cache_hit);
  EXPECT_TRUE(service.query(stencil_request(42)).cache_hit);
}

// The adaptive executor end-to-end with the service as its repartition
// client: same network, same spec, service-backed repartitions must keep
// the run correct and the client must answer from the service (with cache
// hits on recurring imbalance patterns).
TEST(ServiceTest, AdaptiveExecutorUsesServiceClient) {
  const Testbed& bed = testbed();
  AvailabilityFeed feed = make_feed(bed.net);
  svc::PartitionService service(bed.net, bed.db, feed, resolve_stencil);
  svc::AdaptiveServiceClient client(service, "stencil-1200");

  const apps::StencilConfig cfg{.n = 1200, .iterations = 40,
                                .overlap = false};
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  const ProcessorConfig config{6, 0};
  const Placement placement = contiguous_placement(bed.net, config);
  const PartitionVector initial = balanced_partition(
      bed.net, config, clusters_by_speed(bed.net), cfg.n);

  // A load step mid-run forces repartitions (same shape as bench_adaptive).
  const LoadSchedule load =
      LoadSchedule::step(bed.net, 0, 3, SimTime::seconds(2), 0.5);
  ExecutionOptions exec_options;
  exec_options.load = &load;
  AdaptiveOptions adaptive_options{.check_interval = 5,
                                   .imbalance_threshold = 1.2,
                                   .pdu_bytes = 4 * cfg.n};
  adaptive_options.client = &client;

  const AdaptiveResult result = execute_adaptive(
      bed.net, spec, placement, initial, exec_options, adaptive_options);

  EXPECT_GT(result.repartitions, 0);
  EXPECT_EQ(result.final_partition.total(), cfg.n);
  EXPECT_EQ(client.fallbacks(), 0u);
  // Every repartition went through the service as a Repartition request.
  EXPECT_GE(service.metrics().counter("requests").value(),
            static_cast<std::uint64_t>(result.repartitions));
}

// Direct unit check of the client's quantisation: rates scale to
// quantum=1000 on the fastest rank and the returned vector preserves rank
// count and total.
TEST(ServiceTest, AdaptiveClientQuantisesAndPreservesTotals) {
  const Testbed& bed = testbed();
  AvailabilityFeed feed = make_feed(bed.net);
  svc::PartitionService service(bed.net, bed.db, feed, resolve_stencil);
  svc::AdaptiveServiceClient client(service, "job-a");

  const std::vector<double> rates = {4.0, 2.0, 1.0, 1.0};
  const auto partition = client.repartition(rates, 800);
  ASSERT_TRUE(partition.has_value());
  EXPECT_EQ(partition->num_ranks(), 4);
  EXPECT_EQ(partition->total(), 800);
  // Fastest rank gets the largest share.
  EXPECT_GT(partition->at(0), partition->at(2));

  // Identical observed pattern: answered from the cache.
  (void)client.repartition(rates, 800);
  EXPECT_GE(service.cache().stats().hits, 1u);
}

// Cache keys are pure functions of (request, network signature, epoch):
// identical inputs agree, every field participates, and the epoch makes
// stale keys unreachable by construction.
TEST(RequestKeyTest, DeterministicAndFieldSensitive) {
  const Network net = presets::paper_testbed();
  const std::uint64_t sig = svc::network_signature(net);
  EXPECT_EQ(sig, svc::network_signature(presets::paper_testbed()));
  EXPECT_NE(sig, svc::network_signature(presets::fig1_network()));

  const svc::PartitionRequest base = stencil_request(600);
  const std::uint64_t key = svc::request_key(base, sig, 1);
  EXPECT_EQ(key, svc::request_key(stencil_request(600), sig, 1));
  EXPECT_NE(key, svc::request_key(base, sig, 2));          // epoch
  EXPECT_NE(key, svc::request_key(stencil_request(601), sig, 1));  // n

  svc::PartitionRequest variant = base;
  variant.spec = "gauss";
  EXPECT_NE(key, svc::request_key(variant, sig, 1));

  variant = base;
  variant.iterations = 11;
  EXPECT_NE(key, svc::request_key(variant, sig, 1));

  variant = base;
  variant.options.search = PartitionOptions::Search::Linear;
  EXPECT_NE(key, svc::request_key(variant, sig, 1));

  variant = base;
  variant.kind = svc::PartitionRequest::Kind::Repartition;
  variant.rate_milli = {1000, 500};
  EXPECT_NE(key, svc::request_key(variant, sig, 1));

  // Rate vectors are length-prefixed: a rate moving between requests
  // cannot alias.
  svc::PartitionRequest a = variant;
  a.rate_milli = {1000, 500, 250};
  svc::PartitionRequest b = variant;
  b.rate_milli = {1000, 500};
  EXPECT_NE(svc::request_key(a, sig, 1), svc::request_key(b, sig, 1));
}

}  // namespace
}  // namespace netpart

// Unit tests for the discrete-event engine and the network simulator.
#include <gtest/gtest.h>

#include "net/builder.hpp"
#include "net/presets.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/host.hpp"
#include "sim/netsim.hpp"
#include "util/error.hpp"

namespace netpart::sim {
namespace {

// ---------------------------------------------------------------- engine

TEST(EngineTest, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime::millis(3), [&] { order.push_back(3); });
  e.schedule_at(SimTime::millis(1), [&] { order.push_back(1); });
  e.schedule_at(SimTime::millis(2), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), SimTime::millis(3));
  EXPECT_EQ(e.events_executed(), 3u);
}

TEST(EngineTest, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(SimTime::millis(1), [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, ReentrantScheduling) {
  Engine e;
  int fired = 0;
  e.schedule_at(SimTime::millis(1), [&] {
    ++fired;
    e.schedule_after(SimTime::millis(1), [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), SimTime::millis(2));
}

TEST(EngineTest, RunUntilLeavesLaterEventsQueued) {
  Engine e;
  int fired = 0;
  e.schedule_at(SimTime::millis(1), [&] { ++fired; });
  e.schedule_at(SimTime::millis(10), [&] { ++fired; });
  e.run_until(SimTime::millis(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, RejectsPastEvents) {
  Engine e;
  e.schedule_at(SimTime::millis(5), [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(SimTime::millis(1), [] {}), InvalidArgument);
}

// --------------------------------------------------------------- channel

TEST(ChannelTest, SerialisesTransmissions) {
  Channel ch(10e6, SimTime::micros(50));
  const ChannelGrant g1 = ch.reserve(SimTime::zero(), SimTime::millis(2));
  const ChannelGrant g2 = ch.reserve(SimTime::zero(), SimTime::millis(3));
  EXPECT_EQ(g1.start, SimTime::zero());
  EXPECT_EQ(g1.end, SimTime::millis(2));
  EXPECT_EQ(g2.start, SimTime::millis(2));  // waits for g1
  EXPECT_EQ(g2.end, SimTime::millis(5));
  EXPECT_EQ(ch.total_busy(), SimTime::millis(5));
}

TEST(ChannelTest, IdleChannelStartsImmediately) {
  Channel ch(10e6, SimTime::zero());
  ch.reserve(SimTime::zero(), SimTime::millis(1));
  const ChannelGrant g = ch.reserve(SimTime::millis(10), SimTime::millis(1));
  EXPECT_EQ(g.start, SimTime::millis(10));
}

TEST(ChannelTest, WireTimeMatchesBandwidth) {
  Channel ch(10e6, SimTime::zero());  // 10 Mbit/s = 0.8 us/byte
  EXPECT_EQ(ch.wire_time(1000).as_micros(), 800.0);
  EXPECT_EQ(ch.byte_time().as_nanos(), 800);
}

// ------------------------------------------------------------------ host

TEST(HostTest, SerialisesReservations) {
  Host h;
  EXPECT_EQ(h.reserve(SimTime::zero(), SimTime::millis(2)),
            SimTime::millis(2));
  EXPECT_EQ(h.reserve(SimTime::millis(1), SimTime::millis(2)),
            SimTime::millis(4));  // starts at 2, not 1
  EXPECT_EQ(h.total_busy(), SimTime::millis(4));
}

// ---------------------------------------------------------------- netsim

class NetSimTest : public ::testing::Test {
 protected:
  Network net_ = presets::paper_testbed();
  Engine engine_;
};

TEST_F(NetSimTest, IntraClusterDeliveryTimeMatchesModel) {
  NetSim sim(engine_, net_, NetSimParams{}, Rng(1));
  SimTime delivered;
  sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 1000,
           [&] { delivered = engine_.now(); });
  engine_.run();
  // init + occupancy + recv processing.
  const SimTime expected =
      NetSimParams{}.send_initiation +
      sim.message_occupancy(net_.cluster(0).type(), net_.segment(0), 1000) +
      NetSimParams{}.recv_processing;
  EXPECT_EQ(delivered, expected);
}

TEST_F(NetSimTest, CrossClusterPaysRouterAndBothChannels) {
  NetSim sim(engine_, net_, NetSimParams{}, Rng(1));
  SimTime delivered;
  sim.send(ProcessorRef{0, 0}, ProcessorRef{1, 0}, 1000,
           [&] { delivered = engine_.now(); });
  engine_.run();
  const auto link = net_.router_between(0, 1);
  const SimTime expected =
      NetSimParams{}.send_initiation +
      sim.message_occupancy(net_.cluster(0).type(), net_.segment(0), 1000) +
      link->delay_per_packet * 1 + link->delay_per_byte * 1000 +
      sim.message_occupancy(net_.cluster(1).type(), net_.segment(1), 1000) +
      NetSimParams{}.recv_processing;
  EXPECT_EQ(delivered, expected);
}

TEST_F(NetSimTest, CoercionChargedOnlyAcrossFormats) {
  const Network mixed = presets::coercion_testbed();
  Engine e1, e2;
  NetSim same(e1, net_, NetSimParams{}, Rng(1));
  NetSim cross(e2, mixed, NetSimParams{}, Rng(1));
  SimTime t_same, t_cross;
  same.send(ProcessorRef{0, 0}, ProcessorRef{1, 0}, 2000,
            [&] { t_same = e1.now(); });
  cross.send(ProcessorRef{0, 0}, ProcessorRef{1, 0}, 2000,
             [&] { t_cross = e2.now(); });
  e1.run();
  e2.run();
  // The mixed network's IPC-slot cluster is an i860 with different host
  // costs, so compare against its own analytic expectation instead.
  const SimTime coerce =
      mixed.cluster(1).type().coerce_per_byte * 2000;
  const SimTime base_cross =
      NetSimParams{}.send_initiation +
      cross.message_occupancy(mixed.cluster(0).type(), mixed.segment(0),
                              2000) +
      mixed.routers()[0].delay_per_packet * 2 +
      mixed.routers()[0].delay_per_byte * 2000 +
      cross.message_occupancy(mixed.cluster(1).type(), mixed.segment(1),
                              2000) +
      NetSimParams{}.recv_processing;
  EXPECT_EQ(t_cross, base_cross + coerce);
  // Same-format delivery on the paper testbed pays no coercion at all.
  EXPECT_GT(t_same, SimTime::zero());
  EXPECT_GT(coerce, SimTime::zero());
}

TEST_F(NetSimTest, FragmentationCounts) {
  NetSim sim(engine_, net_, NetSimParams{}, Rng(1));
  EXPECT_EQ(sim.fragments(0), 1);
  EXPECT_EQ(sim.fragments(1), 1);
  EXPECT_EQ(sim.fragments(1472), 1);
  EXPECT_EQ(sim.fragments(1473), 2);
  EXPECT_EQ(sim.fragments(4800), 4);
}

TEST_F(NetSimTest, FifoDeliveryBetweenPair) {
  NetSim sim(engine_, net_, NetSimParams{}, Rng(1));
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 500,
             [&order, i] { order.push_back(i); });
  }
  engine_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sim.messages_delivered(), 5u);
}

TEST_F(NetSimTest, LossTriggersRetransmissionButDelivers) {
  NetSimParams params;
  params.loss_rate = 0.3;
  params.rto = SimTime::millis(5);
  NetSim sim(engine_, net_, params, Rng(99));
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 6000,
             [&] { ++delivered; });
  }
  engine_.run();
  EXPECT_EQ(delivered, 50);
  EXPECT_GT(sim.retransmissions(), 0u);
}

TEST_F(NetSimTest, LossDelaysDelivery) {
  Engine e_clean, e_lossy;
  NetSim clean(e_clean, net_, NetSimParams{}, Rng(4));
  NetSimParams lossy_params;
  lossy_params.loss_rate = 0.5;
  NetSim lossy(e_lossy, net_, lossy_params, Rng(4));
  SimTime t_clean, t_lossy;
  clean.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 8000,
             [&] { t_clean = e_clean.now(); });
  lossy.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 8000,
             [&] { t_lossy = e_lossy.now(); });
  e_clean.run();
  e_lossy.run();
  EXPECT_GT(t_lossy, t_clean);
}

TEST_F(NetSimTest, SelfSendSkipsTheWire) {
  NetSim sim(engine_, net_, NetSimParams{}, Rng(1));
  SimTime delivered;
  sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 0}, 100000,
           [&] { delivered = engine_.now(); });
  engine_.run();
  EXPECT_EQ(delivered,
            NetSimParams{}.send_initiation + NetSimParams{}.recv_processing);
  EXPECT_EQ(sim.channel(0).total_busy(), SimTime::zero());
}

TEST_F(NetSimTest, DeterministicAcrossRuns) {
  const auto run_once = [&]() {
    Engine e;
    NetSimParams params;
    params.loss_rate = 0.2;
    NetSim sim(e, net_, params, Rng(1234));
    SimTime last;
    for (int i = 0; i < 20; ++i) {
      sim.send(ProcessorRef{0, i % 6}, ProcessorRef{1, i % 6}, 3000,
               [&] { last = e.now(); });
    }
    e.run();
    return last;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(NetSimTest, ConcurrentMessagesInterleaveFragments) {
  // Two multi-fragment messages started together on one channel finish
  // close together (round-robin), not one fully before the other.
  NetSim sim(engine_, net_, NetSimParams{}, Rng(1));
  SimTime t_a, t_b;
  sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 8000,
           [&] { t_a = engine_.now(); });
  sim.send(ProcessorRef{0, 2}, ProcessorRef{0, 3}, 8000,
           [&] { t_b = engine_.now(); });
  engine_.run();
  const SimTime gap = t_b > t_a ? t_b - t_a : t_a - t_b;
  const SimTime one_message =
      sim.message_occupancy(net_.cluster(0).type(), net_.segment(0), 8000);
  EXPECT_LT(gap.as_millis(), 0.5 * one_message.as_millis());
}

TEST_F(NetSimTest, ParameterValidation) {
  NetSimParams bad;
  bad.loss_rate = 1.0;
  EXPECT_THROW(NetSim(engine_, net_, bad, Rng(1)), InvalidArgument);
  NetSim sim(engine_, net_, NetSimParams{}, Rng(1));
  EXPECT_THROW(sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, -1, [] {}),
               InvalidArgument);
  EXPECT_THROW(sim.host(ProcessorRef{9, 0}), InvalidArgument);
}

}  // namespace
}  // namespace netpart::sim

// End-to-end smoke test: calibrate the paper testbed, partition the stencil,
// execute the chosen configuration, and check the pipeline holds together.
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/partitioner.hpp"
#include "exec/executor.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

TEST(Smoke, CalibratePartitionExecute) {
  const Network net = presets::paper_testbed();
  CalibrationParams cal;
  cal.topologies = {Topology::OneD};
  const CalibrationResult calibration = calibrate(net, cal);

  const apps::StencilConfig cfg{.n = 300, .iterations = 10,
                                .overlap = false};
  const ComputationSpec spec = apps::make_stencil_spec(cfg);
  CycleEstimator estimator(net, calibration.db, spec);

  const auto managers = make_managers(net, AvailabilityPolicy{});
  Network mutable_net = presets::paper_testbed();
  const AvailabilitySnapshot snapshot =
      gather_availability(net, managers);
  ASSERT_EQ(snapshot.total(), 12);

  const PartitionResult result = partition(estimator, snapshot);
  EXPECT_GT(config_total(result.config), 0);
  EXPECT_GT(result.estimate.t_c_ms, 0.0);

  const ExecutionResult run = execute(net, spec, result.placement,
                                      result.estimate.partition, {});
  EXPECT_GT(run.elapsed.as_millis(), 0.0);
}

TEST(Smoke, DistributedStencilMatchesSequential) {
  const Network net = presets::paper_testbed();
  const apps::StencilConfig cfg{.n = 24, .iterations = 4, .overlap = true};
  const ProcessorConfig config{2, 2};
  const Placement placement = contiguous_placement(net, config);
  const PartitionVector partition =
      balanced_partition(net, config, clusters_by_speed(net), cfg.n);

  const auto dist =
      apps::run_distributed_stencil(net, placement, partition, cfg);
  const auto seq = apps::run_sequential(cfg);
  ASSERT_EQ(dist.grid.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_FLOAT_EQ(dist.grid[i], seq[i]) << "at " << i;
  }
}

}  // namespace
}  // namespace netpart

// Tests for the two-phase Jacobi solver (halo exchange + norm reduction).
#include <gtest/gtest.h>

#include "apps/solver.hpp"
#include "calib/calibrate.hpp"
#include "core/decompose.hpp"
#include "core/partitioner.hpp"
#include "exec/executor.hpp"
#include "net/presets.hpp"

namespace netpart {
namespace {

const Network& testbed() {
  static const Network net = presets::paper_testbed();
  return net;
}

TEST(SolverTest, DominantPhaseIsTheHaloExchange) {
  const ComputationSpec spec = apps::make_solver_spec(
      apps::SolverConfig{.n = 300, .iterations = 10});
  ASSERT_EQ(spec.communication_phases().size(), 2u);
  // borders: 4N = 1200 bytes dominates the 8-byte norm reduction.
  EXPECT_EQ(spec.dominant_communication().name, "borders");
  EXPECT_EQ(spec.dominant_communication().topology(), Topology::OneD);
  EXPECT_DOUBLE_EQ(spec.dominant_computation().ops_per_pdu(), 6.0 * 300);
}

TEST(SolverTest, SequentialResidualsDecrease) {
  std::vector<float> grid;
  const std::vector<double> residuals = run_sequential_solver(
      apps::SolverConfig{.n = 32, .iterations = 30}, grid);
  ASSERT_EQ(residuals.size(), 30u);
  // Jacobi converges on the heat plate: the residual shrinks.
  EXPECT_LT(residuals.back(), 0.5 * residuals.front());
  for (std::size_t i = 1; i < residuals.size(); ++i) {
    EXPECT_LE(residuals[i], residuals[i - 1] * 1.01);
  }
}

TEST(SolverTest, DistributedMatchesSequential) {
  const apps::SolverConfig cfg{.n = 40, .iterations = 12};
  const ProcessorConfig config{4, 3};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part = balanced_partition(
      testbed(), config, clusters_by_speed(testbed()), cfg.n);
  const auto dist =
      apps::run_distributed_solver(testbed(), placement, part, cfg);

  std::vector<float> seq_grid;
  const std::vector<double> seq_residuals =
      run_sequential_solver(cfg, seq_grid);

  // The grid evolves identically (same sweeps, same float arithmetic).
  EXPECT_EQ(dist.grid, seq_grid);
  // Residuals reassociate across the tree: equal to within accumulation
  // noise.
  ASSERT_EQ(dist.residuals.size(), seq_residuals.size());
  for (std::size_t i = 0; i < seq_residuals.size(); ++i) {
    EXPECT_NEAR(dist.residuals[i], seq_residuals[i],
                1e-9 * (1.0 + seq_residuals[i]));
  }
}

TEST(SolverTest, SingleRankRunsBothPhases) {
  const apps::SolverConfig cfg{.n = 24, .iterations = 6};
  const Placement placement{ProcessorRef{0, 0}};
  const PartitionVector part({24});
  const auto dist =
      apps::run_distributed_solver(testbed(), placement, part, cfg);
  std::vector<float> seq_grid;
  const auto seq = run_sequential_solver(cfg, seq_grid);
  EXPECT_EQ(dist.grid, seq_grid);
  ASSERT_EQ(dist.residuals.size(), 6u);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(dist.residuals[i], seq[i]);
  }
  EXPECT_EQ(dist.messages, 0u);
}

TEST(SolverTest, PartitionerHandlesTwoPhaseSpec) {
  CalibrationParams params;
  params.topologies = {Topology::OneD, Topology::Tree};
  const CalibrationResult cal = calibrate(testbed(), params);
  const ComputationSpec spec = apps::make_solver_spec(
      apps::SolverConfig{.n = 1200, .iterations = 10});
  CycleEstimator est(testbed(), cal.db, spec);
  const AvailabilitySnapshot snap =
      gather_availability(testbed(),
                          make_managers(testbed(), AvailabilityPolicy{}));
  const PartitionResult r = partition(est, snap);
  EXPECT_GE(config_total(r.config), 6);
  const ExecutionResult run =
      execute(testbed(), spec, r.placement, r.estimate.partition, {});
  EXPECT_GT(run.elapsed.as_millis(), 0.0);
  // Both phases generate traffic: 1-D borders + tree partials.
  const std::uint64_t p =
      static_cast<std::uint64_t>(config_total(r.config));
  EXPECT_EQ(run.messages_delivered,
            10u * (2 * (p - 1) + 2 * (p - 1)));
}

TEST(SolverTest, DistributedSurvivesLoss) {
  const apps::SolverConfig cfg{.n = 30, .iterations = 8};
  const ProcessorConfig config{3, 2};
  const Placement placement = contiguous_placement(testbed(), config);
  const PartitionVector part = balanced_partition(
      testbed(), config, clusters_by_speed(testbed()), cfg.n);
  sim::NetSimParams lossy;
  lossy.loss_rate = 0.2;
  lossy.rto = SimTime::millis(5);
  const auto dist =
      apps::run_distributed_solver(testbed(), placement, part, cfg, lossy);
  std::vector<float> seq_grid;
  run_sequential_solver(cfg, seq_grid);
  // Reliability: loss slows the run but never corrupts the data.
  EXPECT_EQ(dist.grid, seq_grid);
}

}  // namespace
}  // namespace netpart

// Tests for the annotation expression language and spec parser.
#include <gtest/gtest.h>

#include "dp/expr.hpp"
#include "dp/spec_parser.hpp"
#include "util/error.hpp"

namespace netpart {
namespace {

// ------------------------------------------------------------ expressions

TEST(ExprTest, ArithmeticAndPrecedence) {
  const ExprEnv env;
  EXPECT_DOUBLE_EQ(evaluate_expr("1 + 2 * 3", env), 7.0);
  EXPECT_DOUBLE_EQ(evaluate_expr("(1 + 2) * 3", env), 9.0);
  EXPECT_DOUBLE_EQ(evaluate_expr("10 - 4 - 3", env), 3.0);  // left assoc
  EXPECT_DOUBLE_EQ(evaluate_expr("8 / 2 / 2", env), 2.0);
  EXPECT_DOUBLE_EQ(evaluate_expr("-3 + 5", env), 2.0);
  EXPECT_DOUBLE_EQ(evaluate_expr("--4", env), 4.0);
  EXPECT_DOUBLE_EQ(evaluate_expr("2.5e2", env), 250.0);
}

TEST(ExprTest, VariablesAndFunctions) {
  const ExprEnv env = {{"N", 300.0}, {"A", 50.0}};
  EXPECT_DOUBLE_EQ(evaluate_expr("5 * N", env), 1500.0);
  EXPECT_DOUBLE_EQ(evaluate_expr("4 * sqrt(A * A)", env), 200.0);
  EXPECT_DOUBLE_EQ(evaluate_expr("min(N, A)", env), 50.0);
  EXPECT_DOUBLE_EQ(evaluate_expr("max(N, A)", env), 300.0);
  EXPECT_DOUBLE_EQ(evaluate_expr("ceil(N / 7)", env), 43.0);
  EXPECT_DOUBLE_EQ(evaluate_expr("floor(N / 7)", env), 42.0);
  EXPECT_DOUBLE_EQ(evaluate_expr("log2(8)", env), 3.0);
}

TEST(ExprTest, Errors) {
  const ExprEnv env = {{"N", 10.0}};
  EXPECT_THROW(evaluate_expr("N +", env), ConfigError);
  EXPECT_THROW(evaluate_expr("(N", env), ConfigError);
  EXPECT_THROW(evaluate_expr("N 5", env), ConfigError);
  EXPECT_THROW(evaluate_expr("@", env), ConfigError);
  EXPECT_THROW(evaluate_expr("M + 1", env), InvalidArgument);  // unbound
  EXPECT_THROW(evaluate_expr("1 / 0", env), InvalidArgument);
  EXPECT_THROW(evaluate_expr("sqrt(0 - 1)", env), InvalidArgument);
  EXPECT_THROW(evaluate_expr("hypot(3, 4)", env), InvalidArgument);
}

TEST(ExprTest, ToStringRoundTrips) {
  const ExprPtr e = parse_expr("4 * N + min(A, 8) / 2");
  const ExprEnv env = {{"N", 7.0}, {"A", 20.0}};
  EXPECT_DOUBLE_EQ(parse_expr(e->to_string())->evaluate(env),
                   e->evaluate(env));
}

// ------------------------------------------------------------------ specs

constexpr const char* kStencilSpec = R"(
# the paper's STEN-2 as a spec file
computation sten2
param N 300
iterations 10

phase compute grid
  pdus N
  ops 5 * N

phase comm borders
  topology 1-D
  bytes 4 * N
  overlap grid
)";

TEST(SpecParserTest, ParsesAndInstantiatesStencil) {
  const SpecTemplate tmpl = parse_spec(kStencilSpec);
  EXPECT_EQ(tmpl.name(), "sten2");
  const ComputationSpec spec = tmpl.instantiate();
  EXPECT_EQ(spec.num_pdus(), 300);
  EXPECT_EQ(spec.iterations(), 10);
  EXPECT_DOUBLE_EQ(spec.dominant_computation().ops_per_pdu(), 1500.0);
  EXPECT_EQ(spec.dominant_communication().topology(), Topology::OneD);
  EXPECT_EQ(spec.dominant_communication().bytes_per_message(50), 1200);
  EXPECT_TRUE(spec.dominant_phases_overlap());
}

TEST(SpecParserTest, OverridesRescaleTheProblem) {
  const SpecTemplate tmpl = parse_spec(kStencilSpec);
  const ComputationSpec spec = tmpl.instantiate({{"N", 1200.0}});
  EXPECT_EQ(spec.num_pdus(), 1200);
  EXPECT_EQ(spec.dominant_communication().bytes_per_message(100), 4800);
  EXPECT_THROW(tmpl.instantiate({{"M", 5.0}}), InvalidArgument);
}

TEST(SpecParserTest, BytesMayDependOnAssignment) {
  const SpecTemplate tmpl = parse_spec(R"(
computation blocks
param N 100
iterations N

phase compute work
  pdus N * N
  ops 9
  opkind int

phase comm halo
  topology 2-D
  bytes 4 * sqrt(A)
)");
  const ComputationSpec spec = tmpl.instantiate();
  EXPECT_EQ(spec.iterations(), 100);
  EXPECT_EQ(spec.num_pdus(), 10000);
  EXPECT_EQ(spec.dominant_computation().op_kind, OpKind::Integer);
  EXPECT_EQ(spec.dominant_communication().bytes_per_message(2500), 200);
}

TEST(SpecParserTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_spec(""), InvalidArgument);  // no phases at all
  EXPECT_THROW(parse_spec("bogus directive\n"), ConfigError);
  EXPECT_THROW(parse_spec("computation x\nphase compute g\n  pdus 10\n"),
               InvalidArgument);  // missing ops + iterations
  EXPECT_THROW(
      parse_spec("computation x\niterations 1\nphase compute g\n"
                 "  pdus 10\n  ops 1\n  opkind quantum\n"),
      ConfigError);
  EXPECT_THROW(
      parse_spec("computation x\niterations 1\nphase comm c\n  bytes 8\n"),
      InvalidArgument);  // comm phase with no compute phase
  EXPECT_THROW(parse_spec("computation x\nparam N oops\n"), ConfigError);
}

TEST(SpecParserTest, RejectsUnknownTopology) {
  EXPECT_THROW(
      parse_spec("computation x\niterations 1\n"
                 "phase compute g\n  pdus 10\n  ops 1\n"
                 "phase comm c\n  topology 9-D\n  bytes 8\n"),
      InvalidArgument);
}

TEST(SpecParserTest, RejectsPhaseKeysOutsideAnyPhase) {
  EXPECT_THROW(parse_spec("computation x\niterations 1\n  pdus 10\n"),
               ConfigError);
  EXPECT_THROW(parse_spec("computation x\niterations 1\n  bytes 8\n"),
               ConfigError);
}

TEST(SpecParserTest, RejectsTruncatedExpressions) {
  EXPECT_THROW(
      parse_spec("computation x\niterations 1\n"
                 "phase compute g\n  pdus 5 *\n  ops 1\n"),
      ConfigError);
  EXPECT_THROW(
      parse_spec("computation x\niterations\n"
                 "phase compute g\n  pdus 10\n  ops 1\n"),
      ConfigError);
}

TEST(SpecParserTest, OverlapWithUnknownPhaseSurfacesAtInstantiation) {
  const SpecTemplate tmpl = parse_spec(R"(
computation x
iterations 1
phase compute g
  pdus 10
  ops 1
phase comm c
  bytes 8
  overlap nosuch
)");
  EXPECT_THROW(tmpl.instantiate(), InvalidArgument);
}

TEST(SpecParserTest, NonPositiveInstantiationsRejected) {
  const SpecTemplate tmpl = parse_spec(R"(
computation x
param N 10
iterations N
phase compute g
  pdus N
  ops 1
)");
  EXPECT_NO_THROW(tmpl.instantiate());
  EXPECT_THROW(tmpl.instantiate({{"N", 0.0}}), InvalidArgument);
  EXPECT_THROW(tmpl.instantiate({{"N", -3.0}}), InvalidArgument);
}

TEST(SpecParserTest, UndeclaredVariableSurfacesAtInstantiation) {
  const SpecTemplate tmpl = parse_spec(R"(
computation x
iterations 1
phase compute g
  pdus M
  ops 1
)");
  EXPECT_THROW(tmpl.instantiate(), InvalidArgument);
}

}  // namespace
}  // namespace netpart

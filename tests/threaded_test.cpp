// Tests for the real-threads SPMD backend.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "apps/stencil.hpp"
#include "calib/calibrate.hpp"
#include "core/decompose.hpp"
#include "core/partitioner.hpp"
#include "exec/threaded.hpp"
#include "net/availability.hpp"
#include "net/presets.hpp"
#include "util/error.hpp"

namespace netpart {
namespace {

TEST(ThreadedCommTest, PointToPointRoundTrip) {
  threaded::run_spmd(2, [](GlobalRank rank, threaded::Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 7, std::vector<std::byte>{std::byte{42}});
      const threaded::Message reply = comm.recv(0, 1, 8);
      ASSERT_EQ(reply.payload.size(), 1u);
      EXPECT_EQ(std::to_integer<int>(reply.payload[0]), 43);
    } else {
      const threaded::Message msg = comm.recv(1, 0, 7);
      EXPECT_EQ(msg.source, 0);
      comm.send(1, 0, 8,
                std::vector<std::byte>{
                    std::byte{static_cast<unsigned char>(
                        std::to_integer<int>(msg.payload[0]) + 1)}});
    }
  });
}

TEST(ThreadedCommTest, FifoPerKey) {
  threaded::run_spmd(2, [](GlobalRank rank, threaded::Comm& comm) {
    if (rank == 0) {
      for (int i = 0; i < 50; ++i) {
        comm.send(0, 1, 1, std::vector<std::byte>(
                               static_cast<std::size_t>(i + 1)));
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(comm.recv(1, 0, 1).payload.size(),
                  static_cast<std::size_t>(i + 1));
      }
    }
  });
}

TEST(ThreadedCommTest, TagsDoNotCrossMatch) {
  threaded::run_spmd(2, [](GlobalRank rank, threaded::Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, 2, std::vector<std::byte>(20));
      comm.send(0, 1, 1, std::vector<std::byte>(10));
    } else {
      // Receive in the opposite order of sending: matching is by tag.
      EXPECT_EQ(comm.recv(1, 0, 1).payload.size(), 10u);
      EXPECT_EQ(comm.recv(1, 0, 2).payload.size(), 20u);
    }
  });
}

TEST(ThreadedCommTest, BarrierSynchronises) {
  constexpr int kRanks = 4;
  std::atomic<int> phase_counter{0};
  threaded::run_spmd(kRanks, [&](GlobalRank, threaded::Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      ++phase_counter;
      comm.barrier();
      // Between barriers every rank must observe a full round's worth.
      EXPECT_EQ(phase_counter.load() % kRanks, 0);
      comm.barrier();
    }
  });
  EXPECT_EQ(phase_counter.load(), 40);
}

TEST(ThreadedCommTest, BodyExceptionsPropagate) {
  EXPECT_THROW(
      threaded::run_spmd(2,
                         [](GlobalRank rank, threaded::Comm&) {
                           if (rank == 1) {
                             throw InvalidArgument("boom");
                           }
                         }),
      InvalidArgument);
}

TEST(ThreadedCommTest, EmulateComputeValidates) {
  EXPECT_THROW(threaded::emulate_compute(100.0, 0.0), InvalidArgument);
  threaded::emulate_compute(1000.0, 1.0);  // completes
}

TEST(ThreadedStencilTest, MatchesSequentialAcrossConfigs) {
  const Network net = presets::paper_testbed();
  const apps::StencilConfig cfg{.n = 48, .iterations = 6,
                                .overlap = false};
  const std::vector<float> expected = apps::run_sequential(cfg);
  for (const ProcessorConfig& config :
       {ProcessorConfig{1, 0}, ProcessorConfig{3, 0},
        ProcessorConfig{4, 4}}) {
    const Placement placement = contiguous_placement(net, config);
    const PartitionVector part = balanced_partition(
        net, config, clusters_by_speed(net), cfg.n);
    const apps::ThreadedStencilResult result =
        apps::run_threaded_stencil(net, placement, part, cfg);
    EXPECT_EQ(result.grid, expected)
        << config[0] << "," << config[1];
    EXPECT_GE(result.wall_ms, 0.0);
  }
}

TEST(ThreadedStencilTest, AgreesWithSimulatedPath) {
  // Same partition, two entirely different runtimes (event simulator vs
  // real threads): identical numerics.
  const Network net = presets::paper_testbed();
  const apps::StencilConfig cfg{.n = 36, .iterations = 8,
                                .overlap = false};
  const ProcessorConfig config{3, 2};
  const Placement placement = contiguous_placement(net, config);
  const PartitionVector part =
      balanced_partition(net, config, clusters_by_speed(net), cfg.n);
  const auto simulated =
      apps::run_distributed_stencil(net, placement, part, cfg);
  const auto threads =
      apps::run_threaded_stencil(net, placement, part, cfg);
  EXPECT_EQ(simulated.grid, threads.grid);
}

// Concurrency of the partition-search hot path (runs under the TSan tier:
// suite name matches the sanitizer preset's test filter).
TEST(ThreadedPartitionSearchTest, ConcurrentSearchesAndParallelExhaustive) {
  const Network net = presets::paper_testbed();
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);

  // One shared estimator, one scratch per thread: heuristic searches and
  // sharded exhaustive sweeps racing on the same estimator must agree with
  // each other and stay data-race free.
  const PartitionResult reference = partition(est, snap);
  const PartitionResult oracle =
      exhaustive_partition(est, snap, {.threads = 1});
  std::vector<std::thread> pool;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      EstimatorScratch scratch;
      for (int i = 0; i < 5; ++i) {
        const PartitionResult r = partition(est, snap, {}, &scratch);
        if (r.config != reference.config) mismatches.fetch_add(1);
      }
      const PartitionResult x =
          exhaustive_partition(est, snap, {.threads = 2 + (t % 2)});
      if (x.config != oracle.config) mismatches.fetch_add(1);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Work-stealing determinism: the chunked sweep must produce a bitwise
// identical winner (config AND T_c) at every thread count and chunk size,
// with chaos yields injected into the claim loops to perturb the steal
// interleavings.  Runs under the TSan tier (suite name matches the
// sanitizer preset's test filter).
TEST(ThreadedPartitionSearchTest, WorkStealingDeterministicAcrossThreads) {
  Rng rng(0xD37E);
  const Network net = presets::random_network(rng, 4, 5);
  CalibrationParams params;
  params.topologies = {Topology::OneD};
  const CalibrationResult cal = calibrate(net, params);
  const AvailabilitySnapshot snap =
      gather_availability(net, make_managers(net, AvailabilityPolicy{}));
  const ComputationSpec spec = apps::make_stencil_spec(
      apps::StencilConfig{.n = 1200, .iterations = 10, .overlap = false});
  CycleEstimator est(net, cal.db, spec);

  const PartitionResult serial =
      exhaustive_partition(est, snap, {.threads = 1});
  for (const int threads : {1, 2, 3, 4, 8}) {
    for (const std::uint64_t chunk : {std::uint64_t{0}, std::uint64_t{8},
                                      std::uint64_t{64}}) {
      ExhaustiveOptions options;
      options.threads = threads;
      options.chunk = chunk;  // tiny chunks stress the steal protocol
      options.chaos_yield_seed = 0x5EEDu ^ static_cast<std::uint64_t>(
                                               threads * 131) ^ chunk;
      const PartitionResult got = exhaustive_partition(est, snap, options);
      EXPECT_EQ(serial.config, got.config)
          << "threads " << threads << " chunk " << chunk;
      EXPECT_EQ(serial.estimate.t_c_ms, got.estimate.t_c_ms)
          << "threads " << threads << " chunk " << chunk;
      EXPECT_EQ(serial.estimate.t_elapsed_ms, got.estimate.t_elapsed_ms)
          << "threads " << threads << " chunk " << chunk;
      EXPECT_EQ(serial.evaluations, got.evaluations)
          << "threads " << threads << " chunk " << chunk;
    }
  }
}

}  // namespace
}  // namespace netpart

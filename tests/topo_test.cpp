// Unit and property tests for topologies, placement, and the communication
// cycle runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/builder.hpp"
#include "net/presets.hpp"
#include "topo/comm_cycle.hpp"
#include "topo/placement.hpp"
#include "topo/topology.hpp"
#include "util/error.hpp"

namespace netpart {
namespace {

// ------------------------------------------------- topology properties

struct TopoCase {
  Topology topo;
  int p;
};

class TopologyProperties : public ::testing::TestWithParam<TopoCase> {};

TEST_P(TopologyProperties, SendAndRecvAreTransposes) {
  const auto [topo, p] = GetParam();
  // r sends to n  <=>  n receives from r.
  for (GlobalRank r = 0; r < p; ++r) {
    for (GlobalRank n : send_neighbors(topo, r, p)) {
      const auto recv = recv_neighbors(topo, n, p);
      EXPECT_NE(std::find(recv.begin(), recv.end(), r), recv.end())
          << to_string(topo) << " p=" << p << ": " << r << "->" << n;
    }
  }
}

TEST_P(TopologyProperties, NeighborsAreValidAndDistinct) {
  const auto [topo, p] = GetParam();
  for (GlobalRank r = 0; r < p; ++r) {
    std::set<GlobalRank> seen;
    for (GlobalRank n : send_neighbors(topo, r, p)) {
      EXPECT_GE(n, 0);
      EXPECT_LT(n, p);
      EXPECT_NE(n, r) << "self-loop";
      EXPECT_TRUE(seen.insert(n).second) << "duplicate neighbour";
    }
  }
}

TEST_P(TopologyProperties, CycleMessagesMatchNeighbors) {
  const auto [topo, p] = GetParam();
  const auto messages = cycle_messages(topo, p);
  EXPECT_EQ(static_cast<std::int64_t>(messages.size()),
            messages_per_cycle(topo, p));
  // Each directed pair appears exactly once.
  std::set<std::pair<GlobalRank, GlobalRank>> unique(messages.begin(),
                                                     messages.end());
  EXPECT_EQ(unique.size(), messages.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologiesAndSizes, TopologyProperties,
    ::testing::Values(
        TopoCase{Topology::OneD, 1}, TopoCase{Topology::OneD, 2},
        TopoCase{Topology::OneD, 7}, TopoCase{Topology::OneD, 12},
        TopoCase{Topology::Ring, 2}, TopoCase{Topology::Ring, 3},
        TopoCase{Topology::Ring, 9}, TopoCase{Topology::TwoD, 4},
        TopoCase{Topology::TwoD, 6}, TopoCase{Topology::TwoD, 7},
        TopoCase{Topology::TwoD, 12}, TopoCase{Topology::Tree, 2},
        TopoCase{Topology::Tree, 5}, TopoCase{Topology::Tree, 15},
        TopoCase{Topology::Broadcast, 2}, TopoCase{Topology::Broadcast, 8}),
    [](const auto& test_info) {
      std::string name = to_string(test_info.param.topo);
      name += "_p";
      name += std::to_string(test_info.param.p);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(TopologyTest, KnownMessageCounts) {
  EXPECT_EQ(messages_per_cycle(Topology::OneD, 6), 10);   // 2(p-1)
  EXPECT_EQ(messages_per_cycle(Topology::Ring, 6), 6);    // p
  EXPECT_EQ(messages_per_cycle(Topology::Broadcast, 6), 5);
  EXPECT_EQ(messages_per_cycle(Topology::Tree, 7), 12);   // 2(p-1)
  EXPECT_EQ(messages_per_cycle(Topology::OneD, 1), 0);
}

TEST(TopologyTest, MeshShapes) {
  EXPECT_EQ(mesh_shape(12), (std::pair<int, int>{3, 4}));
  EXPECT_EQ(mesh_shape(9), (std::pair<int, int>{3, 3}));
  EXPECT_EQ(mesh_shape(7), (std::pair<int, int>{1, 7}));  // prime -> strip
  EXPECT_EQ(mesh_shape(1), (std::pair<int, int>{1, 1}));
}

TEST(TopologyTest, NamesRoundTrip) {
  for (Topology t : all_topologies()) {
    EXPECT_EQ(topology_from_string(to_string(t)), t);
  }
  EXPECT_EQ(topology_from_string("1d"), Topology::OneD);
  EXPECT_EQ(topology_from_string("BCAST"), Topology::Broadcast);
  EXPECT_THROW(topology_from_string("torus"), InvalidArgument);
  EXPECT_TRUE(is_bandwidth_limited(Topology::Broadcast));
  EXPECT_FALSE(is_bandwidth_limited(Topology::OneD));
}

// ------------------------------------------------------------ placement

class PlacementTest : public ::testing::Test {
 protected:
  Network net_ = presets::paper_testbed();
};

TEST_F(PlacementTest, ContiguousFillsFastestFirst) {
  const Placement p = contiguous_placement(net_, {2, 3});
  ASSERT_EQ(p.size(), 5u);
  // Sparc2 (cluster 0) is faster: ranks 0-1 there, 2-4 on the IPCs.
  EXPECT_EQ(p[0], (ProcessorRef{0, 0}));
  EXPECT_EQ(p[1], (ProcessorRef{0, 1}));
  EXPECT_EQ(p[2], (ProcessorRef{1, 0}));
  EXPECT_EQ(p[4], (ProcessorRef{1, 2}));
}

TEST_F(PlacementTest, SpeedOrderPutsFasterClustersFirst) {
  const Network fig1 = presets::fig1_network();
  const auto order = clusters_by_speed(fig1);
  // rs6000 (0.12us) < hp (0.2us) < sun4 (0.3us).
  EXPECT_EQ(order, (std::vector<ClusterId>{2, 1, 0}));
}

TEST_F(PlacementTest, RoundRobinInterleaves) {
  const Placement p = round_robin_placement(net_, {2, 2});
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0].cluster, 0);
  EXPECT_EQ(p[1].cluster, 1);
  EXPECT_EQ(p[2].cluster, 0);
  EXPECT_EQ(p[3].cluster, 1);
}

TEST_F(PlacementTest, ValidatesConfigs) {
  EXPECT_THROW(validate_config(net_, {7, 0}), InvalidArgument);  // too many
  EXPECT_THROW(validate_config(net_, {0, 0}), InvalidArgument);  // empty
  EXPECT_THROW(validate_config(net_, {1}), InvalidArgument);     // short
  EXPECT_NO_THROW(validate_config(net_, {6, 6}));
  EXPECT_EQ(config_total({3, 4}), 7);
}

TEST_F(PlacementTest, RouterCrossingsContiguousVsRoundRobin) {
  const ProcessorConfig config{3, 3};
  const auto contig = contiguous_placement(net_, config);
  const auto rr = round_robin_placement(net_, config);
  EXPECT_EQ(router_crossings(net_, contig, Topology::OneD), 2);
  EXPECT_EQ(router_crossings(net_, rr, Topology::OneD), 10);  // every link
  EXPECT_EQ(router_crossings(net_, contig, Topology::Ring), 2);
}

// ------------------------------------------------------------ comm cycle

TEST_F(PlacementTest, CommCycleCostGrowsWithBytesAndProcessors) {
  const auto cost = [&](int p, std::int64_t bytes) {
    sim::Engine engine;
    sim::NetSim sim(engine, net_, sim::NetSimParams{}, Rng(3));
    Placement placement;
    for (int i = 0; i < p; ++i) placement.push_back(ProcessorRef{0, i});
    return run_comm_cycles(sim, placement, Topology::OneD, bytes, 2)
        .elapsed_max;
  };
  EXPECT_LT(cost(2, 1000), cost(4, 1000));
  EXPECT_LT(cost(4, 1000), cost(6, 1000));
  EXPECT_LT(cost(4, 1000), cost(4, 4000));
}

TEST_F(PlacementTest, CommCyclePerRankNearMax) {
  // The paper's synchronous-cost observation: with fragment-interleaved
  // channels every processor experiences roughly the maximum cost.
  sim::Engine engine;
  sim::NetSim sim(engine, net_, sim::NetSimParams{}, Rng(3));
  Placement placement;
  for (int i = 0; i < 6; ++i) placement.push_back(ProcessorRef{0, i});
  const CycleResult r =
      run_comm_cycles(sim, placement, Topology::OneD, 4800, 1);
  EXPECT_GT(r.elapsed_mean.as_millis(), 0.6 * r.elapsed_max.as_millis());
}

TEST_F(PlacementTest, LocalityVsBandwidthTradeoff) {
  // Section 5's observations (1) and (2) are in conflict: spanning two
  // segments pays the router and the slower IPC interface, but gains a
  // second private channel.  Latency-bound cycles (small b) should prefer
  // locality; bandwidth-bound cycles (large b) benefit relatively more
  // from the extra segment.
  const auto run = [&](const Placement& placement, std::int64_t bytes) {
    sim::Engine engine;
    sim::NetSim sim(engine, net_, sim::NetSimParams{}, Rng(3));
    return run_comm_cycles(sim, placement, Topology::OneD, bytes, 2)
        .elapsed_max.as_millis();
  };
  Placement intra;
  for (int i = 0; i < 6; ++i) intra.push_back(ProcessorRef{0, i});
  const Placement spanning = contiguous_placement(net_, {3, 3});

  const double small_ratio = run(spanning, 64) / run(intra, 64);
  const double large_ratio = run(spanning, 4800) / run(intra, 4800);
  EXPECT_GT(small_ratio, 1.0) << "tiny messages: locality should win";
  EXPECT_LT(large_ratio, small_ratio)
      << "big messages: the second segment's bandwidth pays the router "
         "back";
}

TEST_F(PlacementTest, BroadcastRootBearsTheLoad) {
  sim::Engine engine;
  sim::NetSim sim(engine, net_, sim::NetSimParams{}, Rng(3));
  Placement placement;
  for (int i = 0; i < 5; ++i) placement.push_back(ProcessorRef{0, i});
  const CycleResult r =
      run_comm_cycles(sim, placement, Topology::Broadcast, 2000, 1);
  // Root (rank 0) finishes with the last delivery, as late as anyone.
  for (const SimTime t : r.per_rank) {
    EXPECT_LE(t, r.per_rank[0]);
  }
}

}  // namespace
}  // namespace netpart

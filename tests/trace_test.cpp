// Tests for the message-lifecycle tracer.
#include <gtest/gtest.h>

#include "net/presets.hpp"
#include "sim/netsim.hpp"
#include "sim/trace.hpp"

namespace netpart::sim {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  Network net_ = presets::paper_testbed();
  Engine engine_;
};

TEST_F(TraceTest, IntraClusterMessageLifecycle) {
  NetSim sim(engine_, net_, NetSimParams{}, Rng(1));
  TraceLog log;
  sim.set_tracer(log.tracer());
  sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 1000, [] {});
  engine_.run();

  EXPECT_EQ(log.count(TraceEvent::Kind::SendInitiated), 1u);
  EXPECT_EQ(log.count(TraceEvent::Kind::LegCompleted), 1u);
  EXPECT_EQ(log.count(TraceEvent::Kind::FragmentLost), 0u);
  EXPECT_EQ(log.count(TraceEvent::Kind::Delivered), 1u);
  EXPECT_EQ(log.bytes_delivered(), 1000);
}

TEST_F(TraceTest, CrossClusterHasTwoLegs) {
  NetSim sim(engine_, net_, NetSimParams{}, Rng(1));
  TraceLog log;
  sim.set_tracer(log.tracer());
  sim.send(ProcessorRef{0, 0}, ProcessorRef{1, 0}, 2000, [] {});
  engine_.run();
  EXPECT_EQ(log.count(TraceEvent::Kind::LegCompleted), 2u);
  EXPECT_EQ(log.count(TraceEvent::Kind::Delivered), 1u);
}

TEST_F(TraceTest, LossEventsAppearUnderLoss) {
  NetSimParams params;
  params.loss_rate = 0.4;
  params.rto = SimTime::millis(2);
  NetSim sim(engine_, net_, params, Rng(7));
  TraceLog log;
  sim.set_tracer(log.tracer());
  for (int i = 0; i < 20; ++i) {
    sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 6000, [] {});
  }
  engine_.run();
  EXPECT_EQ(log.count(TraceEvent::Kind::Delivered), 20u);
  EXPECT_GT(log.count(TraceEvent::Kind::FragmentLost), 0u);
  EXPECT_EQ(log.count(TraceEvent::Kind::FragmentLost),
            sim.retransmissions());
}

TEST_F(TraceTest, MeanLatencyMatchesSingleMessage) {
  NetSim sim(engine_, net_, NetSimParams{}, Rng(1));
  TraceLog log;
  sim.set_tracer(log.tracer());
  SimTime delivered;
  sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 500,
           [&] { delivered = engine_.now(); });
  engine_.run();
  // Latency = delivery - initiation-complete.
  EXPECT_EQ(log.mean_latency(),
            delivered - NetSimParams{}.send_initiation);
}

TEST_F(TraceTest, RenderAndTruncation) {
  NetSim sim(engine_, net_, NetSimParams{}, Rng(1));
  TraceLog log;
  sim.set_tracer(log.tracer());
  for (int i = 0; i < 10; ++i) {
    sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 100, [] {});
  }
  engine_.run();
  const std::string all = log.render(1000);
  EXPECT_NE(all.find("delivered"), std::string::npos);
  const std::string truncated = log.render(3);
  EXPECT_NE(truncated.find("more)"), std::string::npos);
  log.clear();
  EXPECT_TRUE(log.events().empty());
}

TEST_F(TraceTest, NoTracerNoOverheadPath) {
  // Smoke: tracer can be installed and removed.
  NetSim sim(engine_, net_, NetSimParams{}, Rng(1));
  TraceLog log;
  sim.set_tracer(log.tracer());
  sim.set_tracer(nullptr);
  sim.send(ProcessorRef{0, 0}, ProcessorRef{0, 1}, 100, [] {});
  engine_.run();
  EXPECT_TRUE(log.events().empty());
}

}  // namespace
}  // namespace netpart::sim

// Unit tests for the util library: time, rng, statistics, least squares,
// tables, csv, config, strings.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/least_squares.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace netpart {
namespace {

// ------------------------------------------------------------------ time

TEST(SimTimeTest, ConstructorsAgree) {
  EXPECT_EQ(SimTime::millis(1).as_nanos(), 1000000);
  EXPECT_EQ(SimTime::micros(1).as_nanos(), 1000);
  EXPECT_EQ(SimTime::seconds(1).as_nanos(), 1000000000);
  EXPECT_EQ(SimTime::zero().as_nanos(), 0);
}

TEST(SimTimeTest, ArithmeticAndComparison) {
  const SimTime a = SimTime::millis(2);
  const SimTime b = SimTime::millis(3);
  EXPECT_EQ((a + b).as_millis(), 5.0);
  EXPECT_EQ((b - a).as_millis(), 1.0);
  EXPECT_EQ((a * 4).as_millis(), 8.0);
  EXPECT_EQ((a * 2.5).as_millis(), 5.0);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, SimTime::micros(2000));
}

TEST(SimTimeTest, FractionalRounding) {
  EXPECT_EQ(SimTime::micros(0.0004).as_nanos(), 0);
  EXPECT_EQ(SimTime::micros(0.0006).as_nanos(), 1);
}

// ------------------------------------------------------------------- rng

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, StreamsAreIndependent) {
  Rng base(42);
  Rng s1 = base.stream(1);
  Rng s2 = base.stream(2);
  // Different salts give different sequences.
  bool any_different = false;
  for (int i = 0; i < 16; ++i) {
    if (s1.next_u64() != s2.next_u64()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, IntRespectsBoundsAndCoversRange) {
  Rng rng(9);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const std::int64_t v = rng.next_int(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++seen[static_cast<std::size_t>(v - 10)];
  }
  for (int count : seen) {
    EXPECT_GT(count, 700);  // roughly uniform: expectation 1000
  }
}

TEST(RngTest, BoolProbabilityRoughlyCorrect) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits, 2500, 200);
  EXPECT_FALSE(Rng(1).next_bool(0.0));
  EXPECT_TRUE(Rng(1).next_bool(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(rng.next_gaussian(2.0));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(rng.next_exponential(0.5));
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.05);
  EXPECT_THROW(rng.next_exponential(0.0), InvalidArgument);
}

// ----------------------------------------------------------------- stats

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(StatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_gaussian(1.0);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
  EXPECT_THROW(percentile({}, 0.5), InvalidArgument);
}

TEST(StatsTest, RSquaredPerfectAndPoor) {
  const std::vector<double> obs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r_squared(obs, obs), 1.0);
  const std::vector<double> flat = {2.5, 2.5, 2.5, 2.5};
  EXPECT_LE(r_squared(obs, flat), 0.0 + 1e-12);
}

// --------------------------------------------------------- least squares

TEST(LeastSquaresTest, SolveLinearKnownSystem) {
  // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
  const auto x = solve_linear({2, 1, 1, 3}, {5, 10}, 2);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LeastSquaresTest, SingularSystemThrows) {
  EXPECT_THROW(solve_linear({1, 2, 2, 4}, {1, 2}, 2), LogicError);
}

TEST(LeastSquaresTest, Eq1RecoversPlantedConstants) {
  std::vector<Sample2D> samples;
  const double c1 = 0.4, c2 = 1.1, c3 = -0.005, c4 = 0.0028;
  for (double p : {2.0, 3.0, 4.0, 5.0, 6.0}) {
    for (double b : {240.0, 1200.0, 2400.0, 4800.0}) {
      samples.push_back({p, b, c1 + c2 * p + b * (c3 + c4 * p)});
    }
  }
  const Eq1Fit fit = fit_eq1(samples);
  EXPECT_NEAR(fit.c1, c1, 1e-9);
  EXPECT_NEAR(fit.c2, c2, 1e-9);
  EXPECT_NEAR(fit.c3, c3, 1e-12);
  EXPECT_NEAR(fit.c4, c4, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LeastSquaresTest, Eq1RobustToNoise) {
  Rng rng(5);
  std::vector<Sample2D> samples;
  for (double p : {2.0, 4.0, 6.0, 8.0}) {
    for (double b : {100.0, 1000.0, 4000.0}) {
      const double truth = 2.0 + 0.5 * p + b * (0.001 + 0.002 * p);
      samples.push_back({p, b, truth * (1.0 + rng.next_gaussian(0.01))});
    }
  }
  const Eq1Fit fit = fit_eq1(samples);
  EXPECT_NEAR(fit.c2, 0.5, 0.2);
  EXPECT_NEAR(fit.c4, 0.002, 2e-4);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(LeastSquaresTest, LineFit) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {3, 5, 7, 9};  // y = 2x + 1
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
}

// ----------------------------------------------------------------- table

TEST(TableTest, RendersAlignedColumns) {
  Table t({"a", "long header"});
  t.add_row({"1", "2"});
  t.add_rule();
  t.add_row({"333", "4"});
  const std::string out = t.render("title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("| long header |"), std::string::npos);
  EXPECT_NE(out.find("| 333 |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 3u);  // includes the rule
}

TEST(TableTest, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
}

// ------------------------------------------------------------------- csv

TEST(CsvTest, EscapesSpecials) {
  std::ostringstream os;
  CsvWriter w(os, {"x", "y"});
  w.write_row({"plain", "has,comma"});
  w.write_row({"has\"quote", "multi\nline"});
  EXPECT_EQ(os.str(),
            "x,y\nplain,\"has,comma\"\n\"has\"\"quote\",\"multi\nline\"\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

// ---------------------------------------------------------------- config

TEST(ConfigTest, ParsesArgsAndTypes) {
  const Config cfg = Config::from_args({"n=300", "loss=0.1", "flag=true"});
  EXPECT_EQ(cfg.get_int_or("n", 0), 300);
  EXPECT_DOUBLE_EQ(cfg.get_double_or("loss", 0.0), 0.1);
  EXPECT_TRUE(cfg.get_bool_or("flag", false));
  EXPECT_EQ(cfg.get_int_or("missing", 7), 7);
  EXPECT_THROW(Config::from_args({"no-equals"}), ConfigError);
  EXPECT_THROW(cfg.get_int_or("loss", 0), ConfigError);
}

TEST(ConfigTest, ParsesFileFormat) {
  const Config cfg = Config::from_string(
      "# comment\nn = 60\nsizes = 60,300,600\n\nname = stencil # trailing\n");
  EXPECT_EQ(cfg.get_int_or("n", 0), 60);
  EXPECT_EQ(cfg.get_or("name", ""), "stencil");
  const auto sizes = cfg.get_int_list_or("sizes", {});
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[1], 300);
}

// --------------------------------------------------------------- strings

TEST(StringUtilTest, SplitTrimPad) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_TRUE(starts_with("abcdef", "abc"));
  EXPECT_FALSE(starts_with("ab", "abc"));
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
}

// ------------------------------------------------------------- histogram

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(3.0);   // bucket 1
  h.add(9.9);   // bucket 4
  h.add(-5.0);  // clamps to 0
  h.add(42.0);  // clamps to 4
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_THROW(h.bucket(5), InvalidArgument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
}

TEST(HistogramTest, RenderShowsBars) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##"), std::string::npos);
  EXPECT_NE(out.find(" 2\n"), std::string::npos);
}

// ------------------------------------------------------------------ hash

// Published FNV-1a 64-bit vectors: cache keys must be reproducible across
// platforms, so the primitive is pinned to golden values.
TEST(Fnv1aTest, GoldenVectors) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1aTest, StructuredFieldsAreWidthStable) {
  // The same logical value hashed through different widths must differ
  // (each field contributes its full fixed-width encoding)...
  EXPECT_NE(Fnv1a().u32(7).value(), Fnv1a().u64(7).value());
  // ...and repeated runs are bit-identical.
  EXPECT_EQ(Fnv1a().u64(7).i32(-1).f64(0.5).value(),
            Fnv1a().u64(7).i32(-1).f64(0.5).value());
}

TEST(Fnv1aTest, LengthPrefixPreventsConcatenationCollisions) {
  EXPECT_NE(Fnv1a().str("ab").str("c").value(),
            Fnv1a().str("a").str("bc").value());
}

TEST(Fnv1aTest, DoublesAreCanonicalised) {
  // -0.0 and +0.0 compare equal, so they must hash equal.
  EXPECT_EQ(Fnv1a().f64(0.0).value(), Fnv1a().f64(-0.0).value());
  // Any NaN payload collapses to one canonical bit pattern.
  const double nan1 = std::numeric_limits<double>::quiet_NaN();
  const double nan2 = -nan1;
  EXPECT_EQ(Fnv1a().f64(nan1).value(), Fnv1a().f64(nan2).value());
}

// ------------------------------------------------------- histogram tails

TEST(HistogramQuantileTest, UniformSamplesInterpolate) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);  // one sample per bucket
  EXPECT_NEAR(histogram_quantile(h, 0.5), 50.0, 1.0);
  EXPECT_NEAR(histogram_quantile(h, 0.95), 95.0, 1.0);
  EXPECT_NEAR(histogram_quantile(h, 0.0), 0.0, 1.0);
  EXPECT_NEAR(histogram_quantile(h, 1.0), 100.0, 1.0);
}

TEST(HistogramQuantileTest, SummaryIsMonotone) {
  Histogram h(0.0, 10.0, 50);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) h.add(rng.next_double() * 10.0);
  const QuantileSummary s = summarize_quantiles(h);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_NEAR(s.p50, 5.0, 1.0);
}

TEST(HistogramQuantileTest, SingleBucketSpike) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 8; ++i) h.add(3.5);  // all mass in bucket [3, 4)
  EXPECT_GE(histogram_quantile(h, 0.5), 3.0);
  EXPECT_LE(histogram_quantile(h, 0.5), 4.0);
}

TEST(HistogramQuantileTest, RejectsEmptyAndBadQ) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(histogram_quantile(h, 0.5), InvalidArgument);
  h.add(0.5);
  EXPECT_THROW(histogram_quantile(h, -0.1), InvalidArgument);
  EXPECT_THROW(histogram_quantile(h, 1.1), InvalidArgument);
}

// ------------------------------------------------------------------ json

TEST(JsonTest, MembersRenderInInsertionOrder) {
  JsonValue v = JsonValue::object();
  v.set("zebra", 1);
  v.set("alpha", 2);
  EXPECT_EQ(v.dump(), "{\"zebra\":1,\"alpha\":2}");
}

TEST(JsonTest, EscapesAndScalars) {
  JsonValue v = JsonValue::object();
  v.set("s", "a\"b\n");
  v.set("t", true);
  v.set("none", JsonValue());
  v.set("half", 0.5);
  EXPECT_EQ(v.dump(),
            "{\"s\":\"a\\\"b\\n\",\"t\":true,\"none\":null,\"half\":0.5}");
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  JsonValue v = JsonValue::array();
  v.push(std::numeric_limits<double>::infinity());
  v.push(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(v.dump(), "[null,null]");
}

// ---------------------------------------------------------------- errors

TEST(ErrorTest, AssertMacroThrowsLogicError) {
  EXPECT_THROW([] { NP_ASSERT(1 == 2); }(), LogicError);
  EXPECT_NO_THROW([] { NP_ASSERT(1 == 1); }());
}

TEST(ErrorTest, RequireCarriesMessage) {
  try {
    NP_REQUIRE(false, "custom context");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace netpart
